"""RFC 1035 §5 master-file parser (the subset real zones use).

Conventional deployments — the Figure 3a world the paper starts from —
live in zone files.  Operators of the "transferable domain" (§3.4:
anyone controlling authoritative DNS and termination) migrate *from*
these files, so the reproduction reads them: examples and tests can load
a conventional zone, serve it, then swap the policy engine in and show
the before/after on identical data.

Supported: ``$ORIGIN``/``$TTL`` directives, ``;`` comments, ``@``, blank
name inheritance, relative and absolute names, optional TTL/class in
either order, multi-line parenthesised RDATA (SOA), quoted strings (TXT),
and the record types the object model carries (A, AAAA, CNAME, NS, SOA,
TXT).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.addr import IPAddress, IPv4, IPv6
from .records import (
    A,
    AAAA,
    CNAME,
    NS,
    SOA,
    TXT,
    DomainName,
    RData,
    ResourceRecord,
    RRClass,
    RRType,
)
from .zone import Zone

__all__ = ["ZoneFileError", "parse_zone_text", "load_zone"]


class ZoneFileError(ValueError):
    """Malformed master-file content, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _tokenize(text: str):
    """Yield (line_no, tokens) per *logical* line.

    Handles ``;`` comments, double-quoted strings (kept as single tokens,
    marked by a leading ``\0`` so TXT can tell ``"1.2.3.4"`` from an IP),
    and parenthesised continuations spanning physical lines.
    """
    logical: list[str] = []
    start_line = 0
    depth = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        i = 0
        line_tokens: list[str] = []
        current = ""

        def flush():
            nonlocal current
            if current:
                line_tokens.append(current)
                current = ""

        while i < len(raw):
            ch = raw[i]
            if ch == ";":
                break
            if ch == '"':
                end = raw.find('"', i + 1)
                if end == -1:
                    raise ZoneFileError(line_no, "unterminated quoted string")
                flush()
                line_tokens.append("\0" + raw[i + 1:end])
                i = end + 1
                continue
            if ch == "(":
                flush()
                depth += 1
                i += 1
                continue
            if ch == ")":
                flush()
                depth -= 1
                if depth < 0:
                    raise ZoneFileError(line_no, "unbalanced ')'")
                i += 1
                continue
            if ch in " \t":
                flush()
                i += 1
                continue
            current += ch
            i += 1
        flush()

        starts_with_space = bool(raw) and raw[0] in " \t"
        if not logical:
            start_line = line_no
            if starts_with_space and line_tokens:
                # Blank owner: inherit previous name (marker token).
                line_tokens.insert(0, "\0\0INHERIT")
            logical = line_tokens
        else:
            logical.extend(line_tokens)
        if depth == 0:
            if logical:
                yield start_line, logical
            logical = []
    if depth != 0:
        raise ZoneFileError(start_line, "unbalanced '(' at end of file")
    if logical:
        yield start_line, logical


def _parse_name(token: str, origin: DomainName, line_no: int) -> DomainName:
    if token == "@":
        return origin
    try:
        if token.endswith("."):
            return DomainName.from_text(token)
        relative = DomainName.from_text(token)
        return DomainName((*relative.labels, *origin.labels))
    except ValueError as exc:
        raise ZoneFileError(line_no, f"bad name {token!r}: {exc}") from exc


_TYPE_TOKENS = {"A", "AAAA", "CNAME", "NS", "SOA", "TXT"}


def _parse_rdata(rrtype: str, rest: list[str], origin: DomainName, line_no: int) -> RData:
    def need(n: int) -> None:
        if len(rest) < n:
            raise ZoneFileError(line_no, f"{rrtype} needs {n} RDATA fields, got {len(rest)}")

    if rrtype == "A":
        need(1)
        address = IPAddress.from_text(rest[0])
        if address.family != IPv4:
            raise ZoneFileError(line_no, "A record requires an IPv4 address")
        return A(address)
    if rrtype == "AAAA":
        need(1)
        address = IPAddress.from_text(rest[0])
        if address.family != IPv6:
            raise ZoneFileError(line_no, "AAAA record requires an IPv6 address")
        return AAAA(address)
    if rrtype == "CNAME":
        need(1)
        return CNAME(_parse_name(rest[0], origin, line_no))
    if rrtype == "NS":
        need(1)
        return NS(_parse_name(rest[0], origin, line_no))
    if rrtype == "TXT":
        need(1)
        strings = tuple(t[1:] if t.startswith("\0") else t for t in rest)
        return TXT(strings)
    if rrtype == "SOA":
        need(7)
        try:
            numbers = [int(t) for t in rest[2:7]]
        except ValueError as exc:
            raise ZoneFileError(line_no, f"bad SOA numeric field: {exc}") from exc
        return SOA(
            mname=_parse_name(rest[0], origin, line_no),
            rname=_parse_name(rest[1], origin, line_no),
            serial=numbers[0], refresh=numbers[1], retry=numbers[2],
            expire=numbers[3], minimum=numbers[4],
        )
    raise ZoneFileError(line_no, f"unsupported record type {rrtype!r}")


@dataclass(slots=True)
class _ParserState:
    origin: DomainName
    default_ttl: int | None = None
    last_name: DomainName | None = None


def parse_zone_text(text: str, origin: str | DomainName) -> list[ResourceRecord]:
    """Parse master-file text into resource records.

    ``origin`` seeds ``$ORIGIN``; the file may override it.
    """
    state = _ParserState(
        origin=DomainName.from_text(origin) if isinstance(origin, str) else origin
    )
    records: list[ResourceRecord] = []
    for line_no, tokens in _tokenize(text):
        if not tokens:
            continue
        head = tokens[0]
        if head == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError(line_no, "$ORIGIN takes exactly one name")
            state.origin = _parse_name(tokens[1], state.origin, line_no)
            continue
        if head == "$TTL":
            if len(tokens) != 2 or not tokens[1].isdigit():
                raise ZoneFileError(line_no, "$TTL takes one integer")
            state.default_ttl = int(tokens[1])
            continue
        if head.startswith("$"):
            raise ZoneFileError(line_no, f"unsupported directive {head}")

        if head == "\0\0INHERIT":
            if state.last_name is None:
                raise ZoneFileError(line_no, "blank owner with no previous record")
            name = state.last_name
            fields = tokens[1:]
        else:
            name = _parse_name(head, state.origin, line_no)
            fields = tokens[1:]
        state.last_name = name

        # Optional TTL and class, in either order, before the type token.
        ttl: int | None = None
        rrclass = RRClass.IN
        index = 0
        while index < len(fields) and fields[index] not in _TYPE_TOKENS:
            token = fields[index]
            if token.isdigit() and ttl is None:
                ttl = int(token)
            elif token.upper() == "IN":
                rrclass = RRClass.IN
            elif token.upper() in ("CH", "HS", "CS"):
                raise ZoneFileError(line_no, f"unsupported class {token}")
            else:
                raise ZoneFileError(line_no, f"unexpected token {token!r} before type")
            index += 1
        if index >= len(fields):
            raise ZoneFileError(line_no, "missing record type")
        rrtype = fields[index]
        rdata = _parse_rdata(rrtype, fields[index + 1:], state.origin, line_no)
        effective_ttl = ttl if ttl is not None else state.default_ttl
        if effective_ttl is None:
            raise ZoneFileError(line_no, "no TTL and no $TTL default")
        records.append(ResourceRecord(name, rdata, effective_ttl, rrclass))
    return records


def load_zone(text: str, apex: str) -> Zone:
    """Parse text and build a served :class:`~repro.dns.zone.Zone`.

    The file's SOA (if any) replaces the auto-generated one.
    """
    records = parse_zone_text(text, origin=apex)
    soa_records = [r for r in records if r.rrtype == RRType.SOA]
    soa = soa_records[0].rdata if soa_records else None
    zone = Zone(apex, soa=soa)  # type: ignore[arg-type]
    if soa_records:
        zone.remove_rrset(zone.apex, RRType.SOA)
        zone.add_record(soa_records[0])
    for record in records:
        if record.rrtype == RRType.SOA:
            continue
        zone.add_record(record)
    return zone
