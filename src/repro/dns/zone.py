"""Conventional zone data: the Figure 3a baseline.

This is the architecture the paper replaces: a lookup table from names to
pre-assigned address sets, with per-query logic limited to choosing *which
of the pre-assigned* addresses to return (round-robin / random subset —
"DNS will lookup and return any IP in the set to load-balance", §1).

It exists in full so that every experiment has a real before/after: the
pre-agility runs in Figure 7a bind each hostname statically through a
:class:`Zone`, while the agile runs answer from a policy pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable

from .records import (
    A,
    AAAA,
    CNAME,
    SOA,
    DomainName,
    Question,
    RData,
    ResourceRecord,
    RRClass,
    RRType,
)

__all__ = ["Zone", "ZoneError", "LookupResult", "RRSelection"]


class ZoneError(ValueError):
    """Raised on invalid zone contents (out-of-bailiwick names, CNAME+data)."""


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of a zone lookup.

    ``answers`` may be empty with ``found=True`` — the NODATA case (name
    exists, no records of the requested type), which a server must signal
    differently from NXDOMAIN.
    """

    found: bool
    answers: tuple[ResourceRecord, ...] = ()
    cname_chain: tuple[ResourceRecord, ...] = ()


class RRSelection:
    """Answer-set selection policies for multi-address RRsets.

    Conventional DNS load-balancing returns the full RRset rotated
    (round-robin) or a random subset.  This knob exists so the baseline is a
    *fair* baseline: static binding with rotation, the strongest widely
    deployed pre-agility strategy.
    """

    ALL = "all"
    ROUND_ROBIN = "round_robin"
    RANDOM_ONE = "random_one"


class Zone:
    """An authoritative zone: apex, SOA, and RRsets keyed by (name, type).

    Only behaviours the reproduction exercises are implemented: exact-name
    lookup, CNAME chasing within the zone, NODATA vs NXDOMAIN distinction,
    and selection policy for multi-record answers.  (No wildcards, no
    DNSSEC: neither appears in the paper's data path.)
    """

    def __init__(
        self,
        apex: DomainName | str,
        soa: SOA | None = None,
        selection: str = RRSelection.ALL,
        rng: random.Random | None = None,
    ) -> None:
        self.apex = DomainName.from_text(apex) if isinstance(apex, str) else apex
        self.selection = selection
        self._rng = rng or random.Random(0x50A)
        self._rrsets: dict[tuple[DomainName, RRType], list[ResourceRecord]] = {}
        self._names: set[DomainName] = {self.apex}
        self._rotation: dict[tuple[DomainName, RRType], int] = {}
        if soa is None:
            soa = SOA(
                mname=self.apex.child("ns1"),
                rname=self.apex.child("hostmaster"),
                serial=1,
                refresh=7200,
                retry=900,
                expire=1209600,
                minimum=300,
            )
        self.add_record(ResourceRecord(self.apex, soa, ttl=3600))

    # -- mutation ------------------------------------------------------------

    def add_record(self, record: ResourceRecord) -> None:
        if not record.name.is_subdomain_of(self.apex):
            raise ZoneError(f"{record.name} is outside zone {self.apex}")
        key = (record.name, record.rrtype)
        if record.rrtype == RRType.CNAME:
            others = [
                t for (n, t) in self._rrsets if n == record.name and t != RRType.CNAME
            ]
            if others:
                raise ZoneError(f"{record.name} already has non-CNAME data")
            if self._rrsets.get(key):
                raise ZoneError(f"{record.name} already has a CNAME")
        elif (record.name, RRType.CNAME) in self._rrsets:
            raise ZoneError(f"{record.name} has a CNAME; cannot add other data")
        self._rrsets.setdefault(key, []).append(record)
        self._names.add(record.name)

    def add_address(self, name: DomainName | str, address_rdata: RData, ttl: int = 300) -> None:
        """Convenience: add an A or AAAA record."""
        if isinstance(name, str):
            name = DomainName.from_text(name)
        if not isinstance(address_rdata, (A, AAAA)):
            raise TypeError("add_address takes A or AAAA rdata")
        self.add_record(ResourceRecord(name, address_rdata, ttl))

    def remove_rrset(self, name: DomainName, rrtype: RRType) -> int:
        """Delete an entire RRset; returns how many records were removed."""
        removed = len(self._rrsets.pop((name, rrtype), ()))
        if not any(n == name for (n, _t) in self._rrsets):
            self._names.discard(name)
        return removed

    def replace_addresses(
        self, name: DomainName, rrtype: RRType, records: Iterable[ResourceRecord]
    ) -> None:
        """Atomic RRset replacement — how conventional rebinding happens."""
        self.remove_rrset(name, rrtype)
        for record in records:
            if record.rrtype != rrtype:
                raise ZoneError("replacement record type mismatch")
            self.add_record(record)

    # -- lookup ----------------------------------------------------------------

    def name_exists(self, name: DomainName) -> bool:
        if name in self._names:
            return True
        # An "empty non-terminal": foo.example. exists if a.foo.example. does.
        return any(existing.is_subdomain_of(name) for existing in self._names)

    def lookup(self, question: Question) -> LookupResult:
        """Answer a question from zone data, chasing in-zone CNAMEs."""
        if question.rrclass not in (RRClass.IN, RRClass.ANY):
            return LookupResult(found=False)
        name = question.name
        chain: list[ResourceRecord] = []
        seen: set[DomainName] = {name}
        for _ in range(9):  # bounded CNAME chase
            rrset = self._rrsets.get((name, question.rrtype))
            if rrset:
                return LookupResult(
                    found=True,
                    answers=self._select(name, question.rrtype, rrset),
                    cname_chain=tuple(chain),
                )
            cname = self._rrsets.get((name, RRType.CNAME))
            if cname:
                chain.append(cname[0])
                target = cname[0].rdata
                assert isinstance(target, CNAME)
                if not target.target.is_subdomain_of(self.apex):
                    # Out-of-zone CNAME: answer is the chain; resolver continues.
                    return LookupResult(found=True, answers=(), cname_chain=tuple(chain))
                if target.target in seen:
                    # Circular zone data.  Serving the (finite) chain and
                    # letting the client's loop guard reject it keeps the
                    # server total: raising here would escape the serving
                    # loop and take the worker down on a single bad zone.
                    return LookupResult(found=True, answers=(), cname_chain=tuple(chain))
                seen.add(target.target)
                name = target.target
                continue
            if self.name_exists(name):
                return LookupResult(found=True, answers=(), cname_chain=tuple(chain))
            return LookupResult(found=False, cname_chain=tuple(chain))
        # Chain longer than any sane zone: answer what we walked; the
        # client-side depth bound decides whether to keep chasing.
        return LookupResult(found=True, answers=(), cname_chain=tuple(chain))

    def _select(
        self, name: DomainName, rrtype: RRType, rrset: list[ResourceRecord]
    ) -> tuple[ResourceRecord, ...]:
        if self.selection == RRSelection.ALL or len(rrset) == 1:
            return tuple(rrset)
        if self.selection == RRSelection.RANDOM_ONE:
            return (self._rng.choice(rrset),)
        if self.selection == RRSelection.ROUND_ROBIN:
            key = (name, rrtype)
            start = self._rotation.get(key, 0) % len(rrset)
            self._rotation[key] = start + 1
            return tuple(rrset[start:] + rrset[:start])
        raise ZoneError(f"unknown selection policy {self.selection!r}")

    # -- introspection -----------------------------------------------------

    def soa(self) -> ResourceRecord:
        return self._rrsets[(self.apex, RRType.SOA)][0]

    def rrset(self, name: DomainName, rrtype: RRType) -> tuple[ResourceRecord, ...]:
        return tuple(self._rrsets.get((name, rrtype), ()))

    def record_count(self) -> int:
        return sum(len(v) for v in self._rrsets.values())

    def names(self) -> set[DomainName]:
        return set(self._names)
