"""An iterative resolver: root hints, referrals, glue chasing.

The forwarding :class:`~repro.dns.resolver.RecursiveResolver` models the
steady state of the paper's data path (NS records long cached).  This
module models the full cold path a real recursive walks: start at the
root, follow referrals (NS in authority + glue in additional) down the
delegation tree, cache NS/address records along the way, and answer from
whatever authoritative finally says AA.

The "network" is a :class:`ServerDirectory`: address → wire handler.  In
the simulator those handlers are in-process
:class:`~repro.dns.server.AuthoritativeServer` instances (a root, TLDs,
and the CDN), each with its own zones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable

from ..clock import Clock
from ..hashing import stable_hash
from ..netsim.addr import IPAddress
from .cache import DNSCache, TTLPolicy
from .records import A, AAAA, NS, DomainName, Question, ResourceRecord, RRType
from .resolver import ResolveError
from .wire import Message, Rcode, WireError

__all__ = ["ServerDirectory", "IterativeResolver"]

WireHandler = Callable[[bytes], "bytes | None"]


class ServerDirectory:
    """address → server transport: the resolver's view of the network."""

    def __init__(self) -> None:
        self._handlers: dict[IPAddress, WireHandler] = {}

    def register(self, address: IPAddress, handler: WireHandler) -> None:
        self._handlers[address] = handler

    def send(self, address: IPAddress, wire: bytes) -> bytes | None:
        handler = self._handlers.get(address)
        if handler is None:
            return None  # unreachable server: timeout
        return handler(wire)

    def __contains__(self, address: IPAddress) -> bool:
        return address in self._handlers


@dataclass(slots=True)
class IterationStats:
    queries_sent: int = 0
    referrals_followed: int = 0
    glue_misses_resolved: int = 0
    timeouts: int = 0


class IterativeResolver:
    """Full iteration from root hints, with NS/address caching."""

    MAX_STEPS = 24
    MAX_GLUELESS_DEPTH = 4

    def __init__(
        self,
        name: str,
        clock: Clock,
        directory: ServerDirectory,
        root_servers: list[IPAddress],
        ttl_policy: TTLPolicy | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if not root_servers:
            raise ValueError("need at least one root hint")
        self.name = name
        self.clock = clock
        self.directory = directory
        self.root_servers = list(root_servers)
        self.cache = DNSCache(clock, ttl_policy or TTLPolicy.honest())
        self.stats = IterationStats()
        self._rng = rng or random.Random(stable_hash(name) & 0xFFFFFFFF)

    # -- public API ----------------------------------------------------------

    def resolve(self, name: DomainName | str, rrtype: RRType = RRType.A,
                _depth: int = 0) -> tuple[ResourceRecord, ...]:
        if isinstance(name, str):
            name = DomainName.from_text(name)
        question = Question(name, rrtype)

        hit = self.cache.lookup(question)
        if hit is not None:
            records, nxdomain = hit
            if nxdomain:
                raise ResolveError(f"{question}: cached NXDOMAIN", Rcode.NXDOMAIN)
            return records

        servers = self._closest_known_servers(name)
        for _ in range(self.MAX_STEPS):
            if not servers:
                raise ResolveError(f"{question}: no servers to ask")
            address = self._rng.choice(servers)
            response = self._query(address, question)
            if response is None:
                servers = [s for s in servers if s != address]
                continue

            if response.flags.rcode == Rcode.NXDOMAIN:
                self.cache.store_negative(question, self._soa_min(response), nxdomain=True)
                raise ResolveError(f"{question}: NXDOMAIN", Rcode.NXDOMAIN)
            if response.flags.rcode != Rcode.NOERROR:
                servers = [s for s in servers if s != address]
                continue

            if response.flags.aa and response.answers:
                self.cache.store(question, response.answers)
                return response.answers
            if response.flags.aa and not response.answers:
                self.cache.store_negative(question, self._soa_min(response), nxdomain=False)
                return ()

            next_servers = self._follow_referral(response, _depth)
            if not next_servers:
                servers = [s for s in servers if s != address]
                continue
            self.stats.referrals_followed += 1
            servers = next_servers
        raise ResolveError(f"{question}: iteration did not terminate")

    def resolve_addresses(self, name: DomainName | str,
                          rrtype: RRType = RRType.A) -> list[IPAddress]:
        return [
            r.rdata.address for r in self.resolve(name, rrtype)
            if r.rrtype == rrtype and hasattr(r.rdata, "address")
        ]

    # -- internals -------------------------------------------------------------

    def _query(self, address: IPAddress, question: Question) -> Message | None:
        qid = self._rng.getrandbits(16)
        self.stats.queries_sent += 1
        raw = self.directory.send(
            address, Message.query(qid, question.name, question.rrtype).encode()
        )
        if raw is None:
            self.stats.timeouts += 1
            return None
        try:
            response = Message.decode(raw)
        except WireError:
            return None
        if response.id != qid or not response.flags.qr:
            return None
        return response

    def _closest_known_servers(self, name: DomainName) -> list[IPAddress]:
        """Cached NS chain: deepest ancestor with cached NS + addresses."""
        cursor = name
        while True:
            ns_hit = self.cache.lookup(Question(cursor, RRType.NS))
            if ns_hit is not None and ns_hit[0]:
                addresses = self._addresses_for_ns(ns_hit[0], depth=0, resolve_missing=False)
                if addresses:
                    return addresses
            if cursor.is_root:
                return list(self.root_servers)
            cursor = cursor.parent()

    def _follow_referral(self, response: Message, depth: int) -> list[IPAddress]:
        ns_records = tuple(r for r in response.authority if r.rrtype == RRType.NS)
        if not ns_records:
            return []
        # Cache the delegation and its glue.
        self.cache.store(Question(ns_records[0].name, RRType.NS), ns_records)
        by_name: dict[DomainName, list[ResourceRecord]] = {}
        for record in response.additional:
            if record.rrtype in (RRType.A, RRType.AAAA):
                by_name.setdefault(record.name, []).append(record)
        for name, records in by_name.items():
            self.cache.store(Question(name, records[0].rrtype), tuple(records))
        return self._addresses_for_ns(ns_records, depth, resolve_missing=True)

    def _addresses_for_ns(self, ns_records, depth: int, resolve_missing: bool) -> list[IPAddress]:
        addresses: list[IPAddress] = []
        glueless: list[DomainName] = []
        for record in ns_records:
            assert isinstance(record.rdata, NS)
            target = record.rdata.nameserver
            hit = self.cache.lookup(Question(target, RRType.A))
            if hit is not None and hit[0]:
                addresses.extend(
                    r.rdata.address for r in hit[0] if isinstance(r.rdata, (A, AAAA))
                )
            else:
                glueless.append(target)
        if not addresses and resolve_missing and depth < self.MAX_GLUELESS_DEPTH:
            # Glueless delegation: resolve an NS name from the top.
            for target in glueless:
                try:
                    records = self.resolve(target, RRType.A, _depth=depth + 1)
                except ResolveError:
                    continue
                self.stats.glue_misses_resolved += 1
                addresses.extend(
                    r.rdata.address for r in records if isinstance(r.rdata, (A, AAAA))
                )
                if addresses:
                    break
        return addresses

    @staticmethod
    def _soa_min(response: Message) -> int:
        from .records import SOA

        for record in response.authority:
            if isinstance(record.rdata, SOA):
                return min(record.ttl, record.rdata.minimum)
        return 30
