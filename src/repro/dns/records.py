"""DNS resource records, names, and record data types.

The paper re-architects *authoritative DNS answering* (§3.1–3.2); doing
that credibly requires a real DNS data model underneath: domain names with
case-insensitive label semantics, record classes/types, TTLs, and the RDATA
variants the serving path touches (A, AAAA, CNAME, NS, SOA, TXT).

Wire encoding/decoding lives in :mod:`repro.dns.wire`; this module is the
object model both the servers and resolvers share.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netsim.addr import IPAddress, IPv4, IPv6

__all__ = [
    "DomainName",
    "RRType",
    "RRClass",
    "RData",
    "A",
    "AAAA",
    "CNAME",
    "NS",
    "SOA",
    "TXT",
    "OPTPseudo",
    "ResourceRecord",
    "Question",
    "DNSNameError",
]

MAX_NAME_LEN = 255
MAX_LABEL_LEN = 63


class DNSNameError(ValueError):
    """Raised for malformed domain names."""


class RRType(enum.IntEnum):
    """Resource record types (the subset this system serves or forwards)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16
    AAAA = 28
    OPT = 41
    ANY = 255


class RRClass(enum.IntEnum):
    IN = 1
    ANY = 255


@dataclass(frozen=True, slots=True)
class DomainName:
    """A fully-qualified domain name, stored as a tuple of lowercase labels.

    DNS name comparison is case-insensitive (RFC 1035 §2.3.3); labels are
    normalised to lowercase at construction so equality and hashing behave.

    >>> DomainName.from_text("WWW.Example.COM") == DomainName.from_text("www.example.com.")
    True
    """

    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        total = 0
        for label in self.labels:
            if not label:
                raise DNSNameError("empty label inside name")
            if len(label) > MAX_LABEL_LEN:
                raise DNSNameError(f"label too long: {label[:16]!r}…")
            if label != label.lower():
                raise DNSNameError("labels must be normalised lowercase; use from_text")
            total += len(label) + 1
        if total + 1 > MAX_NAME_LEN:
            raise DNSNameError("name exceeds 255 octets")

    @classmethod
    def from_text(cls, text: str) -> "DomainName":
        text = text.rstrip(".")
        if not text:
            return cls(())  # the root
        return cls(tuple(label.lower() for label in text.split(".")))

    @classmethod
    def root(cls) -> "DomainName":
        return cls(())

    # -- structure ---------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return not self.labels

    def parent(self) -> "DomainName":
        if self.is_root:
            raise DNSNameError("the root has no parent")
        return DomainName(self.labels[1:])

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True if self equals other or sits beneath it."""
        n = len(other.labels)
        if n == 0:
            return True
        return self.labels[-n:] == other.labels

    def child(self, label: str) -> "DomainName":
        return DomainName((label.lower(), *self.labels))

    def __str__(self) -> str:
        return ".".join(self.labels) + "."

    def __len__(self) -> int:
        return len(self.labels)


class RData:
    """Base class for record data; subclasses are frozen dataclasses."""

    rrtype: RRType

    def rdata_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class A(RData):
    address: IPAddress
    rrtype = RRType.A

    def __post_init__(self) -> None:
        if self.address.family != IPv4:
            raise ValueError("A record requires an IPv4 address")

    def rdata_text(self) -> str:
        return str(self.address)


@dataclass(frozen=True, slots=True)
class AAAA(RData):
    address: IPAddress
    rrtype = RRType.AAAA

    def __post_init__(self) -> None:
        if self.address.family != IPv6:
            raise ValueError("AAAA record requires an IPv6 address")

    def rdata_text(self) -> str:
        return str(self.address)


@dataclass(frozen=True, slots=True)
class CNAME(RData):
    target: DomainName
    rrtype = RRType.CNAME

    def rdata_text(self) -> str:
        return str(self.target)


@dataclass(frozen=True, slots=True)
class NS(RData):
    nameserver: DomainName
    rrtype = RRType.NS

    def rdata_text(self) -> str:
        return str(self.nameserver)


@dataclass(frozen=True, slots=True)
class SOA(RData):
    mname: DomainName
    rname: DomainName
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int
    rrtype = RRType.SOA

    def rdata_text(self) -> str:
        return (
            f"{self.mname} {self.rname} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True, slots=True)
class TXT(RData):
    strings: tuple[str, ...]
    rrtype = RRType.TXT

    def __post_init__(self) -> None:
        for s in self.strings:
            if len(s.encode()) > 255:
                raise ValueError("TXT character-string exceeds 255 octets")

    def rdata_text(self) -> str:
        return " ".join(f'"{s}"' for s in self.strings)


@dataclass(frozen=True, slots=True)
class OPTPseudo(RData):
    """The EDNS(0) OPT pseudo-record, carried opaquely (RFC 6891).

    OPT overloads the RR fixed fields: CLASS holds the requester's UDP
    payload size and TTL holds extended-RCODE/version/flags.  Both are
    stashed here verbatim; :mod:`repro.dns.edns` interprets them and the
    option TLVs in ``data``.
    """

    udp_payload_size: int
    ttl_word: int
    data: bytes
    rrtype = RRType.OPT

    def rdata_text(self) -> str:
        return f"OPT payload={self.udp_payload_size} ({len(self.data)} option bytes)"


#: RDATA class for each type this codec understands.
RDATA_CLASSES: dict[RRType, type] = {
    RRType.A: A,
    RRType.AAAA: AAAA,
    RRType.CNAME: CNAME,
    RRType.NS: NS,
    RRType.SOA: SOA,
    RRType.TXT: TXT,
}


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One RR: name, class, TTL, and typed RDATA."""

    name: DomainName
    rdata: RData
    ttl: int
    rrclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 0x7FFFFFFF:
            raise ValueError(f"TTL {self.ttl} outside RFC 2181 range")

    @property
    def rrtype(self) -> RRType:
        return self.rdata.rrtype

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        return ResourceRecord(self.name, self.rdata, ttl, self.rrclass)

    def __str__(self) -> str:
        return (
            f"{self.name} {self.ttl} {self.rrclass.name} "
            f"{self.rrtype.name} {self.rdata.rdata_text()}"
        )


@dataclass(frozen=True, slots=True)
class Question:
    """A query triple (QNAME, QTYPE, QCLASS)."""

    name: DomainName
    rrtype: RRType
    rrclass: RRClass = RRClass.IN

    def __str__(self) -> str:
        return f"{self.name} {self.rrclass.name} {self.rrtype.name}"
