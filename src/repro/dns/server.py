"""Authoritative DNS server skeleton with a pluggable answer source.

The paper's key DNS insight (§3.1) is that the name→address binding happens
*at the moment the response is generated*, so changing how answers are
produced requires touching nothing else: "any processing, validation, or
logging remains unchanged" (§3.2 step 2).  This module is that unchanged
scaffolding — wire decode, validation, counters, response assembly — with
the answer-production step abstracted as :class:`AnswerSource`.

Two sources exist in the repository:

* :class:`ZoneAnswerSource` — conventional Figure 3a serving from a
  :class:`~repro.dns.zone.Zone` lookup table;
* :class:`repro.core.authoritative.PolicyAnswerSource` — the paper's
  Figure 3b policy engine.

Swapping one for the other is a one-line change, which is itself a claim
the paper makes ("a drop-in software modification", §4.2) and one our tests
verify at the wire level.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..netsim.addr import IPAddress
from .records import DomainName, OPTPseudo, Question, ResourceRecord, RRClass, RRType
from .wire import Message, Opcode, Rcode, WireError
from .zone import Zone

__all__ = [
    "QueryContext",
    "Answer",
    "AnswerSource",
    "ZoneAnswerSource",
    "AuthoritativeServer",
    "ServerStats",
    "MIN_UDP_PAYLOAD",
    "MAX_MESSAGE_SIZE",
]

#: RFC 1035 §4.2.1: without EDNS the requester can only take 512 octets.
MIN_UDP_PAYLOAD = 512
#: Hard cap either way — TCP frames carry a 16-bit length (RFC 1035 §4.2.2).
MAX_MESSAGE_SIZE = 65535


@dataclass(frozen=True, slots=True)
class QueryContext:
    """Everything the serving path knows about a query besides the question.

    ``pop`` is where the (anycast-routed) query arrived; ``resolver_address``
    is the recursive resolver that sent it; ``client_subnet`` models EDNS
    Client Subnet when present.  Policy attributes (§3.2) are computed from
    these plus per-hostname account metadata.
    """

    pop: str
    resolver_address: IPAddress | None = None
    client_subnet: str | None = None
    transport: str = "udp"


@dataclass(frozen=True, slots=True)
class Answer:
    """What an answer source returns for one question.

    A *referral* is NOERROR with empty ``records``, the delegation's NS
    set in ``authority``, and glue in ``additional`` — how a parent zone
    points an iterative resolver at the child's servers.
    """

    rcode: Rcode
    records: tuple[ResourceRecord, ...] = ()
    authority: tuple[ResourceRecord, ...] = ()
    additional: tuple[ResourceRecord, ...] = ()
    authoritative: bool = True


class AnswerSource:
    """Strategy interface: produce answer records for a validated question."""

    def answer(self, question: Question, context: QueryContext) -> Answer:
        raise NotImplementedError

    def answer_batch(
        self, questions: Sequence[Question], context: QueryContext
    ) -> list[Answer]:
        """Answer many questions sharing one context; in question order.

        The default is the scalar loop, so every source is batch-callable;
        sources with per-query overhead worth hoisting (the policy engine)
        override this with a columnar implementation.
        """
        answer = self.answer
        return [answer(question, context) for question in questions]


class ZoneAnswerSource(AnswerSource):
    """Conventional serving (Figure 3a): look the name up in zone data."""

    def __init__(self, zones: list[Zone]) -> None:
        if not zones:
            raise ValueError("need at least one zone")
        self._zones = sorted(zones, key=lambda z: len(z.apex), reverse=True)

    def zone_for(self, name: DomainName) -> Zone | None:
        """Longest-suffix (most specific apex) zone match."""
        for zone in self._zones:
            if name.is_subdomain_of(zone.apex):
                return zone
        return None

    def answer(self, question: Question, context: QueryContext) -> Answer:
        zone = self.zone_for(question.name)
        if zone is None:
            return Answer(Rcode.REFUSED)

        referral = self._referral(zone, question.name)
        if referral is not None:
            return referral

        result = zone.lookup(question)
        if not result.found:
            return Answer(Rcode.NXDOMAIN, authority=(zone.soa(),))
        records = (*result.cname_chain, *result.answers)
        if not records:
            # NODATA: NOERROR with SOA in authority (negative-caching signal).
            return Answer(Rcode.NOERROR, authority=(zone.soa(),))
        return Answer(Rcode.NOERROR, records=records)

    def _referral(self, zone: Zone, name: DomainName) -> Answer | None:
        """A delegation between the zone apex and ``name`` produces a
        referral: non-authoritative NOERROR, NS in authority, glue in
        additional (RFC 1034 §4.3.2 step 3b)."""
        from .records import NS as NSData

        ancestors: list[DomainName] = []
        cursor = name
        while cursor != zone.apex and len(cursor) > len(zone.apex):
            ancestors.append(cursor)
            cursor = cursor.parent()
        for cut in reversed(ancestors):  # closest to the apex wins
            ns_set = zone.rrset(cut, RRType.NS)
            if not ns_set:
                continue
            glue: list[ResourceRecord] = []
            for ns in ns_set:
                assert isinstance(ns.rdata, NSData)
                target = ns.rdata.nameserver
                if target.is_subdomain_of(zone.apex):
                    glue.extend(zone.rrset(target, RRType.A))
                    glue.extend(zone.rrset(target, RRType.AAAA))
            return Answer(
                Rcode.NOERROR,
                authority=ns_set,
                additional=tuple(glue),
                authoritative=False,
            )
        return None


@dataclass(slots=True)
class ServerStats:
    """Counters the production service would export to monitoring."""

    queries: int = 0
    responses: int = 0
    by_rcode: dict[Rcode, int] = field(default_factory=dict)
    by_type: dict[RRType, int] = field(default_factory=dict)
    formerr_drops: int = 0
    truncations: int = 0  # UDP responses trimmed + TC-flagged (RFC 2181 §9)

    def record(self, rrtype: RRType | None, rcode: Rcode) -> None:
        self.responses += 1
        self.by_rcode[rcode] = self.by_rcode.get(rcode, 0) + 1
        if rrtype is not None:
            self.by_type[rrtype] = self.by_type.get(rrtype, 0) + 1


class AuthoritativeServer:
    """The serving loop: bytes in, bytes out.

    The wire layer, validation, and accounting here are deliberately
    identical no matter which :class:`AnswerSource` is plugged in — that
    invariance *is* the experiment of §4.2.
    """

    SUPPORTED_TYPES = frozenset(
        {RRType.A, RRType.AAAA, RRType.CNAME, RRType.NS, RRType.SOA, RRType.TXT}
    )

    def __init__(self, source: AnswerSource, name: str = "authdns") -> None:
        self.source = source
        self.name = name
        self.stats = ServerStats()

    # -- wire entry point ----------------------------------------------------

    def handle_wire(self, data: bytes, context: QueryContext) -> bytes | None:
        """Process one datagram; returns response bytes (None = drop).

        UDP responses honour the client's advertised EDNS buffer size (512
        without an OPT): an encoding that exceeds it is trimmed to a
        well-formed message with TC set, telling the client to retry over
        the TCP path (``context.transport == "tcp"``), where the only limit
        is the 16-bit frame length.
        """
        self.stats.queries += 1
        try:
            query = Message.decode(data)
        except WireError:
            self.stats.formerr_drops += 1
            return None
        response = self.handle_query(query, context)
        wire = response.encode()
        limit = (
            self._payload_limit(query) if context.transport == "udp" else MAX_MESSAGE_SIZE
        )
        if len(wire) > limit:
            self.stats.truncations += 1
            wire = self._truncated(response, limit)
        return wire

    @staticmethod
    def _payload_limit(query: Message) -> int:
        """The client's advertised UDP capacity, clamped to [512, 65535]."""
        from .edns import extract_opt

        try:
            opt = extract_opt(query)
        except WireError:
            return MIN_UDP_PAYLOAD  # bad OPT body: treated as EDNS-less
        if opt is None:
            return MIN_UDP_PAYLOAD
        return min(max(opt.udp_payload_size, MIN_UDP_PAYLOAD), MAX_MESSAGE_SIZE)

    @staticmethod
    def _truncated(response: Message, limit: int) -> bytes:
        """Trim ``response`` until it fits ``limit``; always sets TC.

        Records are dropped whole, from the back: additional data first
        (except the OPT, which the client needs to see the TC context),
        then authority, then answers — every intermediate candidate is a
        well-formed message, never a mid-record cut.
        """
        from dataclasses import replace as _replace

        opts = [rr for rr in response.additional if isinstance(rr.rdata, OPTPseudo)]
        extra = [rr for rr in response.additional if not isinstance(rr.rdata, OPTPseudo)]
        answers = list(response.answers)
        authority = list(response.authority)
        truncated = _replace(response, flags=_replace(response.flags, tc=True))
        while True:
            truncated = _replace(
                truncated,
                answers=tuple(answers),
                authority=tuple(authority),
                additional=(*extra, *opts),
            )
            wire = truncated.encode()
            if len(wire) <= limit:
                return wire
            if extra:
                extra.pop()
            elif authority:
                authority.pop()
            elif answers:
                answers.pop()
            else:
                # Header + question + OPT always fit any ≥512 limit.
                return wire

    # -- message-level entry point ---------------------------------------------

    def handle_query(self, query: Message, context: QueryContext) -> Message:
        """Process one decoded query message.

        EDNS(0): an OPT record in the query populates the context's
        ``client_subnet`` (RFC 7871) and is echoed in the response, as a
        compliant authoritative must.
        """
        if query.flags.qr or not query.questions:
            self.stats.record(None, Rcode.FORMERR)
            return query.response(rcode=Rcode.FORMERR, aa=False)
        if query.flags.opcode != Opcode.QUERY:
            # IQUERY/NOTIFY/UPDATE (or anything future): well-formed but not
            # implemented here — RFC 1035 §4.1.1 NOTIMP, echoing the opcode.
            self.stats.record(None, Rcode.NOTIMP)
            return query.response(rcode=Rcode.NOTIMP, aa=False)

        from dataclasses import replace as _replace
        from .edns import OptRecord, attach_opt, extract_opt

        try:
            opt = extract_opt(query)
        except WireError:
            # The message framing decoded but the OPT option TLVs are
            # garbage (RFC 6891 §6.1.3: FORMERR) — never let edns parsing
            # raise out of the serving loop.
            self.stats.record(None, Rcode.FORMERR)
            return query.response(rcode=Rcode.FORMERR, aa=False)
        if opt is not None and opt.client_subnet is not None:
            context = _replace(context, client_subnet=str(opt.client_subnet.prefix))
        question = query.questions[0]
        if question.rrclass not in (RRClass.IN, RRClass.ANY):
            self.stats.record(question.rrtype, Rcode.REFUSED)
            return query.response(rcode=Rcode.REFUSED, aa=False)
        if question.rrtype not in self.SUPPORTED_TYPES:
            self.stats.record(question.rrtype, Rcode.NOTIMP)
            return query.response(rcode=Rcode.NOTIMP, aa=False)

        answer = self.source.answer(question, context)
        self.stats.record(question.rrtype, answer.rcode)
        response = query.response(
            answers=answer.records,
            authority=answer.authority,
            additional=answer.additional,
            rcode=answer.rcode,
            aa=answer.authoritative and answer.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN),
        )
        if opt is not None:
            scope = opt.client_subnet.prefix.length if opt.client_subnet else 0
            echo = OptRecord(
                udp_payload_size=opt.udp_payload_size,
                client_subnet=(
                    None if opt.client_subnet is None
                    else type(opt.client_subnet)(opt.client_subnet.prefix, scope=scope)
                ),
            )
            response = attach_opt(response, echo)
        return response
