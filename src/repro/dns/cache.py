"""TTL-driven DNS caching, including misbehaving-resolver TTL policies.

§3.1: "the lifetime of the name-to-IP binding is upper-bounded in time by
the larger of connection lifetime and TTL in downstream caches."  §4.4
warns that "resolvers commonly modify TTL values", citing measurement
studies.  Both observations matter to the agility experiments — a rebind
(DoS mitigation, leak mitigation) completes only when downstream caches
expire — so the cache models honest expiry *and* the common violations:
clamping low TTLs up (cache-friendly resolvers) and capping high TTLs down.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..clock import Clock
from .records import DomainName, Question, ResourceRecord, RRType

__all__ = ["TTLPolicy", "DNSCache", "CacheStats"]


@dataclass(frozen=True, slots=True)
class TTLPolicy:
    """How a cache treats authoritative TTLs.

    ``clamp_min``: never store below this (models resolvers that round
    tiny TTLs up — the violation that delays agile rebinds).
    ``clamp_max``: never store above this (models resolvers that distrust
    week-long TTLs).
    ``honour``: if False the cache serves entries for exactly
    ``override`` seconds regardless of record TTL.
    """

    clamp_min: int = 0
    clamp_max: int = 7 * 24 * 3600
    honour: bool = True
    override: int = 0

    def __post_init__(self) -> None:
        if self.clamp_min < 0 or self.clamp_max < 0 or self.override < 0:
            raise ValueError("TTL policy values must be non-negative")
        if self.clamp_min > self.clamp_max:
            raise ValueError("clamp_min exceeds clamp_max")
        if not self.honour and self.override == 0:
            raise ValueError("non-honouring policy needs a positive override")

    def effective_ttl(self, record_ttl: int) -> int:
        if not self.honour:
            return self.override
        return max(self.clamp_min, min(self.clamp_max, record_ttl))

    @classmethod
    def honest(cls) -> "TTLPolicy":
        return cls()

    @classmethod
    def clamping(cls, minimum: int) -> "TTLPolicy":
        """The §4.4 violator: stretches small TTLs up to ``minimum``."""
        return cls(clamp_min=minimum)


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0   # entries dropped because their TTL ran out
    evictions: int = 0     # fresh entries displaced by capacity pressure
    insertions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(slots=True)
class _Entry:
    records: tuple[ResourceRecord, ...]
    stored_at: float
    expires_at: float
    negative: bool = False
    nxdomain: bool = False


class DNSCache:
    """A (name, type)-keyed cache with simulated-clock expiry.

    Remaining-TTL semantics follow RFC 2181: a hit returns records carrying
    the entry's remaining lifetime (rounded down), as a resolver forwarding
    a cached answer would.  The remaining lifetime is measured against the
    *effective* (policy-adjusted) TTL — a clamping resolver advertises the
    stretched TTL downstream, because that is what its cache actually does.
    """

    def __init__(
        self,
        clock: Clock,
        policy: TTLPolicy | None = None,
        capacity: int = 1_000_000,
        serve_stale_window: float = 0.0,
    ) -> None:
        """``serve_stale_window``: opt-in RFC 8767 retention — expired
        positive entries linger (invisible to :meth:`lookup`) for this many
        seconds so :meth:`lookup_stale` can serve them while every upstream
        is unreachable.  0 (default) keeps strict RFC 2181 expiry."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if serve_stale_window < 0:
            raise ValueError("serve_stale_window must be non-negative")
        self.clock = clock
        self.policy = policy or TTLPolicy.honest()
        self.capacity = capacity
        self.serve_stale_window = serve_stale_window
        self.stats = CacheStats()
        self._entries: dict[tuple[DomainName, RRType], _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- writes ----------------------------------------------------------------

    def store(self, question: Question, records: Iterable[ResourceRecord]) -> None:
        """Cache a positive answer — :meth:`store_batch` of one."""
        self.store_batch(((question, records),))

    def store_batch(
        self,
        items: Sequence[tuple[Question, Iterable[ResourceRecord]]],
    ) -> None:
        """Cache many positive answers; ``insertions`` folded once per batch.

        State changes (eviction sweeps, overwrites) happen per item in
        order, exactly as :meth:`store` in a loop would — only the counter
        write is hoisted.  The fold lands even if an item raises partway,
        so counters never drift from the entries actually inserted.
        """
        effective_ttl = self.policy.effective_ttl
        entries = self._entries
        inserted = 0
        try:
            for question, records in items:
                records = tuple(records)
                if not records:
                    continue
                ttl = effective_ttl(min(r.ttl for r in records))
                if ttl <= 0:
                    continue  # TTL 0 answers are use-once; never cached
                now = self.clock.now()
                key = (question.name, question.rrtype)
                self._evict_if_full(key)
                entries[key] = _Entry(
                    records=records, stored_at=now, expires_at=now + ttl
                )
                inserted += 1
        finally:
            self.stats.insertions += inserted

    def store_negative(self, question: Question, soa_minimum: int, nxdomain: bool = True) -> None:
        """Negative caching (RFC 2308): remember NXDOMAIN or NODATA for the
        SOA minimum.  ``nxdomain=False`` marks a NODATA (name exists, type
        doesn't) entry, which callers must surface differently."""
        ttl = self.policy.effective_ttl(soa_minimum)
        if ttl <= 0:
            return
        now = self.clock.now()
        key = (question.name, question.rrtype)
        self._evict_if_full(key)
        self._entries[key] = _Entry(
            records=(), stored_at=now, expires_at=now + ttl, negative=True, nxdomain=nxdomain
        )
        self.stats.insertions += 1

    def _evict_if_full(self, key: tuple[DomainName, RRType]) -> None:
        if len(self._entries) < self.capacity:
            return
        if key in self._entries:
            return  # overwrite in place: no new slot needed, nothing to evict
        now = self.clock.now()
        expired = [k for k, e in self._entries.items() if e.expires_at <= now]
        for k in expired:
            del self._entries[k]
            self.stats.expirations += 1
        while len(self._entries) >= self.capacity:
            # Fallback: evict the soonest-to-expire (still-fresh) entry.
            victim = min(self._entries, key=lambda k: self._entries[k].expires_at)
            del self._entries[victim]
            self.stats.evictions += 1

    # -- reads -----------------------------------------------------------------

    def get(self, question: Question) -> tuple[ResourceRecord, ...] | None:
        """Fresh records, TTL-adjusted, or None on miss/expiry.

        A cached *negative* entry returns an empty tuple — callers must
        distinguish ``()`` (known-nonexistent) from ``None`` (unknown).
        Use :meth:`lookup` to also learn whether empty means NXDOMAIN.
        """
        hit = self.lookup(question)
        return None if hit is None else hit[0]

    def lookup(self, question: Question) -> tuple[tuple[ResourceRecord, ...], bool] | None:
        """Like :meth:`get` but returns ``(records, is_nxdomain)`` —
        :meth:`lookup_batch` of one."""
        return self.lookup_batch((question,))[0]

    def lookup_batch(
        self, questions: Sequence[Question]
    ) -> list[tuple[tuple[ResourceRecord, ...], bool] | None]:
        """Batched :meth:`lookup`: one result per question, in order, with
        hit/miss/expiration counters folded once per batch.

        Expiry side effects (entry deletion) stay per item in sequence, so
        duplicate questions within a batch behave exactly as a scalar loop
        — the second occurrence sees whatever the first left behind.
        """
        entries = self._entries
        serve_stale_window = self.serve_stale_window
        hits = misses = expirations = 0
        results: list[tuple[tuple[ResourceRecord, ...], bool] | None] = []
        append = results.append
        try:
            for question in questions:
                key = (question.name, question.rrtype)
                entry = entries.get(key)
                now = self.clock.now()
                if entry is None:
                    misses += 1
                    append(None)
                    continue
                if entry.expires_at <= now:
                    # Stale-but-retained positive entries stay for
                    # lookup_stale; they read as misses here so callers
                    # still try upstream first.
                    keep = (
                        serve_stale_window > 0
                        and not entry.negative
                        and now < entry.expires_at + serve_stale_window
                    )
                    if not keep:
                        del entries[key]
                        expirations += 1
                    misses += 1
                    append(None)
                    continue
                hits += 1
                if entry.negative:
                    append(((), entry.nxdomain))
                    continue
                # Advertise the remaining *effective* lifetime, not the
                # original record TTL: a clamp_min-stretched entry (the
                # §4.4 violator) keeps being served here for the clamped
                # lifetime, and downstream caches must see that — it is
                # exactly the rebind delay §4.4 warns about.
                remaining = max(int(entry.expires_at - now), 0)
                append((tuple(r.with_ttl(remaining) for r in entry.records), False))
        finally:
            stats = self.stats
            stats.hits += hits
            stats.misses += misses
            stats.expirations += expirations
        return results

    def lookup_stale(self, question: Question, stale_ttl: int = 30) -> tuple[ResourceRecord, ...] | None:
        """An expired-but-retained answer (RFC 8767 serve-stale), or None.

        Only meaningful with a positive ``serve_stale_window``.  Returned
        records carry ``stale_ttl`` (the RFC's recommended short TTL) so a
        downstream cache cannot pin staleness for long.
        """
        entry = self._entries.get((question.name, question.rrtype))
        if entry is None or entry.negative:
            return None
        now = self.clock.now()
        if entry.expires_at > now:  # still fresh: use lookup()
            return None
        if now >= entry.expires_at + self.serve_stale_window:
            return None
        return tuple(r.with_ttl(stale_ttl) for r in entry.records)

    def negative_ttl_remaining(self, question: Question) -> float | None:
        """Remaining lifetime of a cached negative entry (NODATA/NXDOMAIN).

        Lets a downstream cache (the stub) inherit the authoritative SOA
        minimum this cache stored, instead of inventing its own.
        """
        entry = self._entries.get((question.name, question.rrtype))
        if entry is None or not entry.negative:
            return None
        remaining = entry.expires_at - self.clock.now()
        return remaining if remaining > 0 else None

    def flush(self, name: DomainName | None = None) -> int:
        """Drop everything, or everything under ``name``; returns count."""
        if name is None:
            n = len(self._entries)
            self._entries.clear()
            return n
        victims = [k for k in self._entries if k[0].is_subdomain_of(name)]
        for k in victims:
            del self._entries[k]
        return len(victims)

    def expire_all_due(self) -> int:
        """Proactively sweep expired entries; returns how many were dropped."""
        now = self.clock.now()
        victims = [k for k, e in self._entries.items() if e.expires_at <= now]
        for k in victims:
            del self._entries[k]
            self.stats.expirations += 1
        return len(victims)
