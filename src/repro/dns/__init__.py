"""DNS substrate: records, wire codec, zones, serving, caching, resolving."""

from .cache import CacheStats, DNSCache, TTLPolicy
from .edns import ClientSubnet, OptRecord, attach_opt, extract_opt
from .iterative import IterativeResolver, ServerDirectory
from .records import (
    A,
    AAAA,
    CNAME,
    NS,
    SOA,
    TXT,
    DNSNameError,
    DomainName,
    Question,
    RData,
    ResourceRecord,
    RRClass,
    RRType,
)
from .resolver import RecursiveResolver, ResolveError, ResolverStats
from .server import (
    Answer,
    AnswerSource,
    AuthoritativeServer,
    QueryContext,
    ServerStats,
    ZoneAnswerSource,
)
from .stub import StubResolver
from .wire import Flags, Message, Opcode, Rcode, WireError
from .zone import LookupResult, RRSelection, Zone, ZoneError
from .zonefile import ZoneFileError, load_zone, parse_zone_text

__all__ = [
    "ClientSubnet",
    "OptRecord",
    "attach_opt",
    "extract_opt",
    "IterativeResolver",
    "ServerDirectory",
    "CacheStats",
    "DNSCache",
    "TTLPolicy",
    "A",
    "AAAA",
    "CNAME",
    "NS",
    "SOA",
    "TXT",
    "DNSNameError",
    "DomainName",
    "Question",
    "RData",
    "ResourceRecord",
    "RRClass",
    "RRType",
    "RecursiveResolver",
    "ResolveError",
    "ResolverStats",
    "Answer",
    "AnswerSource",
    "AuthoritativeServer",
    "QueryContext",
    "ServerStats",
    "ZoneAnswerSource",
    "StubResolver",
    "Flags",
    "Message",
    "Opcode",
    "Rcode",
    "WireError",
    "LookupResult",
    "RRSelection",
    "Zone",
    "ZoneError",
    "ZoneFileError",
    "load_zone",
    "parse_zone_text",
]
