"""Client-side stub resolvers.

§4.4: "DNS responses are cached both at recursive and local client stub
resolvers."  The stub is the second cache tier — typically the OS resolver
cache — and matters because it is what actually pins a client's traffic to
one returned address between lookups.  A stub talks to exactly one
recursive resolver (its configured DNS server).
"""

from __future__ import annotations

from ..clock import Clock
from ..netsim.addr import IPAddress
from .cache import DNSCache, TTLPolicy
from .records import DomainName, Question, RRType
from .resolver import RecursiveResolver, ResolveError

__all__ = ["StubResolver", "MAX_CNAME_DEPTH"]

#: RFC 1034 §3.6.2 expects short chains; this bounds both the walk and the
#: re-queries a dangling (cross-zone) tail may trigger.
MAX_CNAME_DEPTH = 8


class StubResolver:
    """An OS-style stub: tiny TTL-honouring cache in front of one recursive.

    ``lookup`` returns the address list for a hostname; the *first* address
    is what a typical client connects to, and our browser model uses it.
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        recursive: RecursiveResolver,
        ttl_policy: TTLPolicy | None = None,
        cache_capacity: int = 512,
    ) -> None:
        self.name = name
        self.clock = clock
        self.recursive = recursive
        self.cache = DNSCache(clock, ttl_policy or TTLPolicy.honest(), capacity=cache_capacity)

    def lookup(self, hostname: str | DomainName, rrtype: RRType = RRType.A) -> list[IPAddress]:
        """Resolve to addresses; raises :class:`ResolveError` on NXDOMAIN.

        Follows the recursive's answer through CNAME chains: any address
        records of the requested type in the answer section count.
        """
        name = DomainName.from_text(hostname) if isinstance(hostname, str) else hostname
        question = Question(name, rrtype)

        hit = self.cache.lookup(question)
        if hit is not None:
            records, nxdomain = hit
            if nxdomain:
                raise ResolveError(f"{question}: cached NXDOMAIN")
            return self._chase(name, records, rrtype)

        records = self.recursive.resolve(name, rrtype)
        if records:
            self.cache.store(question, records)
        else:
            # NODATA: inherit the authoritative SOA minimum the recursive
            # just cached rather than inventing one.  If the recursive
            # cached nothing (SOA minimum of 0), neither do we.
            soa_minimum = self.recursive.cache.negative_ttl_remaining(question)
            if soa_minimum is not None:
                self.cache.store_negative(
                    question, int(soa_minimum), nxdomain=False
                )
        return self._chase(name, records, rrtype)

    def _chase(self, name: DomainName, records, rrtype: RRType) -> list[IPAddress]:
        """Follow the CNAME chain in ``records`` starting at ``name``.

        Collecting *every* address record in the answer section would both
        miss chains the authoritative could not finish (a cross-zone CNAME
        leaves the chain dangling with zero addresses) and swallow records
        for unrelated owner names.  So walk the chain by owner name from the
        query name; when it dangles, re-query the recursive for the tail —
        bounded by :data:`MAX_CNAME_DEPTH` and loop-guarded by a visited
        set, since chains crossing servers can be circular.
        """
        from .records import CNAME as CNAMEData

        current = name
        visited = {current}
        records = tuple(records)
        while True:
            addresses = [
                r.rdata.address
                for r in records
                if r.name == current and r.rrtype == rrtype and hasattr(r.rdata, "address")
            ]
            if addresses:
                return addresses
            cname = next(
                (r for r in records if r.name == current and r.rrtype == RRType.CNAME),
                None,
            )
            if cname is None:
                return []  # chain ended in NODATA
            assert isinstance(cname.rdata, CNAMEData)
            target = cname.rdata.target
            if target in visited:
                raise ResolveError(f"{name}: CNAME loop via {target}")
            if len(visited) > MAX_CNAME_DEPTH:
                raise ResolveError(
                    f"{name}: CNAME chain exceeds {MAX_CNAME_DEPTH} links"
                )
            visited.add(target)
            current = target
            if not any(r.name == current for r in records):
                # Dangling tail: the chain leaves this answer set (e.g. the
                # target lives in a zone the authoritative would not follow
                # into) — chase it with a fresh recursive query.
                records = (*records, *self.recursive.resolve(current, rrtype))
