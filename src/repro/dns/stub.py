"""Client-side stub resolvers.

§4.4: "DNS responses are cached both at recursive and local client stub
resolvers."  The stub is the second cache tier — typically the OS resolver
cache — and matters because it is what actually pins a client's traffic to
one returned address between lookups.  A stub talks to exactly one
recursive resolver (its configured DNS server).
"""

from __future__ import annotations

from ..clock import Clock
from ..netsim.addr import IPAddress
from .cache import DNSCache, TTLPolicy
from .records import DomainName, Question, RRType
from .resolver import RecursiveResolver, ResolveError

__all__ = ["StubResolver"]


class StubResolver:
    """An OS-style stub: tiny TTL-honouring cache in front of one recursive.

    ``lookup`` returns the address list for a hostname; the *first* address
    is what a typical client connects to, and our browser model uses it.
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        recursive: RecursiveResolver,
        ttl_policy: TTLPolicy | None = None,
        cache_capacity: int = 512,
    ) -> None:
        self.name = name
        self.clock = clock
        self.recursive = recursive
        self.cache = DNSCache(clock, ttl_policy or TTLPolicy.honest(), capacity=cache_capacity)

    def lookup(self, hostname: str | DomainName, rrtype: RRType = RRType.A) -> list[IPAddress]:
        """Resolve to addresses; raises :class:`ResolveError` on NXDOMAIN.

        Follows the recursive's answer through CNAME chains: any address
        records of the requested type in the answer section count.
        """
        name = DomainName.from_text(hostname) if isinstance(hostname, str) else hostname
        question = Question(name, rrtype)

        hit = self.cache.lookup(question)
        if hit is not None:
            records, nxdomain = hit
            if nxdomain:
                raise ResolveError(f"{question}: cached NXDOMAIN")
            return self._addresses(records, rrtype)

        records = self.recursive.resolve(name, rrtype)
        if records:
            self.cache.store(question, records)
        else:
            # NODATA: inherit the authoritative SOA minimum the recursive
            # just cached rather than inventing one.  If the recursive
            # cached nothing (SOA minimum of 0), neither do we.
            soa_minimum = self.recursive.cache.negative_ttl_remaining(question)
            if soa_minimum is not None:
                self.cache.store_negative(
                    question, int(soa_minimum), nxdomain=False
                )
        return self._addresses(records, rrtype)

    @staticmethod
    def _addresses(records, rrtype: RRType) -> list[IPAddress]:
        return [
            r.rdata.address
            for r in records
            if r.rrtype == rrtype and hasattr(r.rdata, "address")
        ]
