"""EDNS(0) OPT pseudo-records and the Client Subnet option (RFC 7871).

Real resolvers attach OPT records to nearly every query; large public
resolvers forward a truncated client prefix (ECS) so authoritatives can
geo-select.  The paper's policy engine matches on where the query
*arrived* (anycast does the geo work), but ECS matters to the reproduction
twice over:

* substrate realism — the §6 measurement experiment is precisely about
  clients whose resolver sits in the wrong catchment, the situation ECS
  was invented to patch; experiments can compare anycast-based against
  ECS-based policy attribution;
* wire-format completeness — an authoritative that FORMERRs on OPT would
  be undeployable.

The OPT record abuses the RR fixed fields (RFC 6891): CLASS carries the
requester's UDP payload size, TTL carries extended RCODE/version/flags.
This module keeps OPT separate from the ordinary RR model — it is not
cacheable data — and provides helpers to attach/extract it on
:class:`~repro.dns.wire.Message`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..netsim.addr import IPAddress, IPv4, IPv6, Prefix
from .records import DomainName, OPTPseudo, ResourceRecord
from .wire import Message, WireError

__all__ = ["ClientSubnet", "OptRecord", "attach_opt", "extract_opt"]

_ECS_OPTION_CODE = 8
_FAMILY_IANA = {IPv4: 1, IPv6: 2}
_FAMILY_FROM_IANA = {1: IPv4, 2: IPv6}


@dataclass(frozen=True, slots=True)
class ClientSubnet:
    """An RFC 7871 client-subnet option: a truncated client prefix."""

    prefix: Prefix
    scope: int = 0  # authoritative's answer scope (0 in queries)

    def __post_init__(self) -> None:
        if not 0 <= self.scope <= self.prefix.bits:
            raise ValueError(f"scope {self.scope} exceeds address width")

    def pack(self) -> bytes:
        source = self.prefix.length
        addr_bytes = (source + 7) // 8
        packed_addr = self.prefix.network.to_bytes(self.prefix.bits // 8, "big")[:addr_bytes]
        return struct.pack(
            "!HBB", _FAMILY_IANA[self.prefix.family], source, self.scope
        ) + packed_addr

    @classmethod
    def unpack(cls, data: bytes) -> "ClientSubnet":
        if len(data) < 4:
            raise WireError("ECS option shorter than its fixed fields")
        family_code, source, scope = struct.unpack_from("!HBB", data, 0)
        family = _FAMILY_FROM_IANA.get(family_code)
        if family is None:
            raise WireError(f"unknown ECS family {family_code}")
        bits = 32 if family == IPv4 else 128
        if source > bits:
            raise WireError(f"ECS source length {source} exceeds family width")
        addr_bytes = (source + 7) // 8
        raw = data[4:4 + addr_bytes]
        if len(raw) < addr_bytes:
            raise WireError("ECS address bytes truncated")
        value = int.from_bytes(raw.ljust(bits // 8, b"\x00"), "big")
        address = IPAddress(family, value)
        return cls(prefix=Prefix.of(address, source), scope=scope)


@dataclass(frozen=True, slots=True)
class OptRecord:
    """The decoded OPT pseudo-record."""

    udp_payload_size: int = 1232
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    client_subnet: ClientSubnet | None = None
    raw_options: tuple[tuple[int, bytes], ...] = ()

    def to_wire_fields(self) -> tuple[int, int, bytes]:
        """(class word, ttl word, rdata) for embedding into a message."""
        ttl = (self.extended_rcode << 24) | (self.version << 16)
        if self.dnssec_ok:
            ttl |= 1 << 15
        rdata = bytearray()
        options = list(self.raw_options)
        if self.client_subnet is not None:
            options.append((_ECS_OPTION_CODE, self.client_subnet.pack()))
        for code, data in options:
            rdata += struct.pack("!HH", code, len(data))
            rdata += data
        return self.udp_payload_size, ttl, bytes(rdata)

    @classmethod
    def from_wire_fields(cls, class_word: int, ttl_word: int, rdata: bytes) -> "OptRecord":
        client_subnet = None
        raw: list[tuple[int, bytes]] = []
        offset = 0
        while offset < len(rdata):
            if offset + 4 > len(rdata):
                raise WireError("truncated OPT option header")
            code, length = struct.unpack_from("!HH", rdata, offset)
            offset += 4
            data = rdata[offset:offset + length]
            if len(data) < length:
                raise WireError("truncated OPT option body")
            offset += length
            if code == _ECS_OPTION_CODE:
                client_subnet = ClientSubnet.unpack(data)
            else:
                raw.append((code, data))
        return cls(
            udp_payload_size=class_word,
            extended_rcode=(ttl_word >> 24) & 0xFF,
            version=(ttl_word >> 16) & 0xFF,
            dnssec_ok=bool(ttl_word & (1 << 15)),
            client_subnet=client_subnet,
            raw_options=tuple(raw),
        )


def attach_opt(message: Message, opt: OptRecord) -> Message:
    """Return ``message`` with the OPT record appended to ADDITIONAL."""
    from dataclasses import replace

    class_word, ttl_word, rdata = opt.to_wire_fields()
    record = ResourceRecord(
        DomainName.root(),
        OPTPseudo(udp_payload_size=class_word, ttl_word=ttl_word, data=rdata),
        ttl=0,
    )
    return replace(message, additional=(*message.additional, record))


def extract_opt(message: Message) -> OptRecord | None:
    """Pull the OPT record out of a decoded message, if present."""
    for record in message.additional:
        if isinstance(record.rdata, OPTPseudo):
            return OptRecord.from_wire_fields(
                record.rdata.udp_payload_size,
                record.rdata.ttl_word,
                record.rdata.data,
            )
    return None
