"""repro.obs — sim-clock-aware metrics and tracing.

One registry over every stats surface (:mod:`repro.obs.metrics`,
:mod:`repro.obs.adapters`), structured span traces along the dispatch and
mitigation paths (:mod:`repro.obs.trace`), and JSON/Prometheus exporters
with snapshot diffing (:mod:`repro.obs.export`).  Front door:
``python -m repro metrics``.
"""

from .adapters import (
    DISPATCH_LATENCY_BUCKETS,
    time_lookup_path,
    watch_cache_node_stats,
    watch_cache_stats,
    watch_cdn,
    watch_datacenter_load,
    watch_ecmp,
    watch_fault_timeline,
    watch_lookup_path,
    watch_resolver_stats,
    watch_serve,
    watch_sklookup,
)
from .export import diff_snapshots, render_diff, to_json, to_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    bucket_label,
)
from .trace import SpanEvent, TraceRecorder

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "DEFAULT_BUCKETS",
    "bucket_label",
    "TraceRecorder",
    "SpanEvent",
    "to_json",
    "to_prometheus",
    "diff_snapshots",
    "render_diff",
    "watch_cache_stats",
    "watch_ecmp",
    "watch_resolver_stats",
    "watch_sklookup",
    "watch_lookup_path",
    "time_lookup_path",
    "DISPATCH_LATENCY_BUCKETS",
    "watch_fault_timeline",
    "watch_cache_node_stats",
    "watch_datacenter_load",
    "watch_cdn",
    "watch_serve",
]
