"""The metrics registry: one deterministic surface over every counter.

The paper's evaluation is measurement-driven — TTL-bounded rebind
convergence (§4.4), per-address query spread (Fig. 7), dispatch behaviour
(§3.3) — yet the reproduction grew five ad-hoc stats surfaces
(``CacheStats``, ``EcmpStats``, ``ResolverStats``, the sk_lookup ``stats``
dict, ``FaultTimeline``) with no common way to read them.  This module is
the union type: a :class:`MetricsRegistry` owns first-class instruments
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`) *and* polls legacy
surfaces attached as collectors, so one :meth:`MetricsRegistry.snapshot`
sees everything.

Determinism is a hard requirement (the ``repro check`` DT lints run over
this package): no wall clock — timestamps come from the simulated
:class:`~repro.clock.Clock` when one is provided — and snapshots are
emitted in sorted-name order so two runs of the same seed produce
byte-identical exports.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable, Iterable

from ..clock import Clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricError",
    "DEFAULT_BUCKETS",
    "bucket_label",
]

#: Default histogram buckets, in simulated seconds: spans the sub-second
#: dispatch path up through multi-minute convergence horizons.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0,
)


class MetricError(Exception):
    """Registry misuse: duplicate name with a different type, bad buckets."""


class Counter:
    """A monotonically increasing count (queries served, rules removed)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A value that can go both ways (active entries, healthy servers)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram of observations (per-phase sim durations).

    Buckets are cumulative upper bounds, Prometheus-style; an implicit
    ``+Inf`` bucket catches everything.  Fixed buckets keep snapshots
    deterministic and mergeable — no adaptive resizing, no quantile sketch
    whose state depends on arrival order.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"histogram {name}: needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"histogram {name}: buckets must strictly increase")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: int | float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ``inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip((*self.buckets, float("inf")), self.bucket_counts):
            running += n
            out.append((bound, running))
        return out


#: A collector reads a legacy stats surface *at snapshot time* and returns
#: ``{metric_name: numeric_value}``.  Pull-based on purpose: the hot paths
#: keep their cheap ad-hoc counters and pay nothing until someone looks.
Collector = Callable[[], dict[str, "int | float"]]


class MetricsRegistry:
    """Owns instruments, polls collectors, renders deterministic snapshots."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Collector] = {}

    # -- instrument registration ---------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(self._counters, Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(self._gauges, Gauge, name, help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        self._check_name_free(name, skip=self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            return existing
        hist = Histogram(name, buckets, help)
        self._histograms[name] = hist
        return hist

    def _get_or_create(self, table: dict, cls, name: str, help: str):
        self._check_name_free(name, skip=table)
        existing = table.get(name)
        if existing is None:
            existing = table[name] = cls(name, help)
        return existing

    def _check_name_free(self, name: str, skip: dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not skip and name in table:
                raise MetricError(f"metric name {name!r} already used by another type")

    # -- legacy-surface attachment -------------------------------------------

    def attach(self, prefix: str, collector: Collector) -> None:
        """Poll ``collector`` at snapshot time, prefixing its metric names.

        This is how the five pre-existing stats surfaces become readable
        here without rewriting their hot paths — see
        :mod:`repro.obs.adapters` for the stock bindings.
        """
        if prefix in self._collectors:
            raise MetricError(f"collector prefix {prefix!r} already attached")
        self._collectors[prefix] = collector

    def detach(self, prefix: str) -> None:
        self._collectors.pop(prefix, None)

    def collected(self) -> dict[str, int | float]:
        """One flat poll of every attached collector, names prefixed."""
        out: dict[str, int | float] = {}
        for prefix in sorted(self._collectors):
            for name, value in sorted(self._collectors[prefix]().items()):
                out[f"{prefix}.{name}"] = value
        return out

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready, deterministically ordered view of everything.

        ``counters`` merges owned counters with collector output (legacy
        surfaces are counter-shaped); ``at`` is simulated seconds, or
        ``None`` when the registry has no clock.
        """
        counters = {name: c.value for name, c in sorted(self._counters.items())}
        counters.update(self.collected())
        return {
            "at": self.clock.now() if self.clock is not None else None,
            "counters": dict(sorted(counters.items())),
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "buckets": [[bucket_label(bound), n] for bound, n in h.cumulative()],
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def bucket_label(bound: float) -> str:
    """Prometheus ``le`` label text; keeps snapshots strict JSON (no Infinity)."""
    return "+Inf" if bound == float("inf") else format(bound, "g")
