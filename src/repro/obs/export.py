"""Snapshot export: JSON, Prometheus text format, and snapshot diffing.

Snapshots are plain dicts (see :meth:`MetricsRegistry.snapshot`), so the
exporters here are pure functions — easy to test byte-for-byte, and the
diff mode works on any two saved files regardless of which run produced
them.  ``BENCH_*.json`` perf-trajectory artefacts are these snapshots
plus whatever scalars the benchmark adds.
"""

from __future__ import annotations

import json
import re

__all__ = [
    "to_json",
    "to_prometheus",
    "diff_snapshots",
    "render_diff",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a dotted metric name into the Prometheus charset."""
    sane = _NAME_BAD.sub("_", name)
    if sane and sane[0].isdigit():
        sane = "_" + sane
    return sane


def to_json(snapshot: dict, indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def to_prometheus(snapshot: dict, namespace: str = "repro") -> str:
    """The text exposition format (one sample per line, sorted names)."""
    lines: list[str] = []
    if snapshot.get("at") is not None:
        lines.append(f"# simulated time: {snapshot['at']:g}s")
    for name, value in sorted(snapshot.get("counters", {}).items()):
        sane = f"{namespace}_{_prom_name(name)}"
        lines.append(f"# TYPE {sane} counter")
        lines.append(f"{sane} {value:g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        sane = f"{namespace}_{_prom_name(name)}"
        lines.append(f"# TYPE {sane} gauge")
        lines.append(f"{sane} {value:g}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        sane = f"{namespace}_{_prom_name(name)}"
        lines.append(f"# TYPE {sane} histogram")
        for le, count in hist["buckets"]:
            lines.append(f'{sane}_bucket{{le="{le}"}} {count}')
        lines.append(f"{sane}_sum {hist['sum']:g}")
        lines.append(f"{sane}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-metric deltas between two snapshots (counters and gauges).

    Histograms diff on ``count``/``sum``.  Metrics present on only one
    side appear with the other side read as 0 — a new counter's first
    snapshot *is* its delta.
    """
    out: dict = {"at": [before.get("at"), after.get("at")], "counters": {}, "gauges": {},
                 "histograms": {}}
    for section in ("counters", "gauges"):
        a, b = before.get(section, {}), after.get(section, {})
        for name in sorted(set(a) | set(b)):
            delta = b.get(name, 0) - a.get(name, 0)
            if delta:
                out[section][name] = delta
    ah, bh = before.get("histograms", {}), after.get("histograms", {})
    for name in sorted(set(ah) | set(bh)):
        empty = {"count": 0, "sum": 0.0}
        a, b = ah.get(name, empty), bh.get(name, empty)
        dcount = b["count"] - a["count"]
        if dcount:
            out["histograms"][name] = {"count": dcount, "sum": b["sum"] - a["sum"]}
    return out


def render_diff(diff: dict) -> str:
    """Human-readable diff table (what ``repro metrics --diff`` prints)."""
    lines = []
    at_a, at_b = diff.get("at", [None, None])
    if at_a is not None and at_b is not None:
        lines.append(f"simulated time: {at_a:g}s -> {at_b:g}s")
    for section in ("counters", "gauges"):
        for name, delta in sorted(diff.get(section, {}).items()):
            lines.append(f"  {name:<56} {delta:+g}")
    for name, d in sorted(diff.get("histograms", {}).items()):
        mean = d["sum"] / d["count"] if d["count"] else 0.0
        lines.append(
            f"  {name:<56} {d['count']:+g} observations (mean {mean:g})"
        )
    if len(lines) <= 1:
        lines.append("  (no change)")
    return "\n".join(lines)
