"""Stock collectors: the five legacy stats surfaces, readable in one place.

Each ``watch_*`` function attaches a pull collector to a
:class:`~repro.obs.metrics.MetricsRegistry`: the legacy object keeps its
cheap ad-hoc counters on the hot path, and the registry reads them only
at snapshot time.  Covered surfaces:

==========================  =============================================
legacy surface              metrics (under the caller's prefix)
==========================  =============================================
``dns.cache.CacheStats``    hits, misses, expirations, evictions,
                            insertions
``edge.ecmp.EcmpStats``     routed, servers, per_server.<name>
``dns.resolver.             client_queries, upstream_queries, servfails,
ResolverStats``             nxdomains, retries, upstream_failures,
                            stale_served
``sockets.sklookup`` stats  runs, redirects, drops, fallthroughs,
                            rules_removed, rules (gauge-like), map_size
``faults.FaultTimeline``    events, by_kind.<kind>, by_phase.<phase>
==========================  =============================================

``watch_cdn`` walks a whole :class:`~repro.edge.cdn.CDN` and attaches the
edge-side surfaces (ECMP, sk_lookup, edge caches, traffic) per
datacenter/server, so one call makes an entire deployment observable.
"""

from __future__ import annotations

from dataclasses import fields
from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # import cycles: obs must stay importable from every layer
    from collections.abc import Callable

    from ..dns.cache import CacheStats
    from ..dns.resolver import ResolverStats
    from ..edge.cache import CacheNodeStats
    from ..edge.cdn import CDN
    from ..edge.datacenter import Datacenter
    from ..edge.ecmp import ECMPRouter
    from ..faults.events import FaultTimeline
    from ..flow.engine import FlowEngine
    from ..netsim.speakers import SpeakerSimulation
    from ..serve.workers import WorkerPool
    from ..sockets.lookup import LookupPath
    from ..sockets.sklookup import SkLookupProgram

__all__ = [
    "DISPATCH_LATENCY_BUCKETS",
    "watch_cache_stats",
    "watch_ecmp",
    "watch_resolver_stats",
    "watch_sklookup",
    "watch_lookup_path",
    "time_lookup_path",
    "watch_fault_timeline",
    "watch_cache_node_stats",
    "watch_datacenter_load",
    "watch_flow_engine",
    "watch_speakers",
    "watch_cdn",
    "watch_serve",
    "watch_campaign",
    "DRAIN_LATENCY_BUCKETS",
]

#: Buckets for per-packet dispatch latency, in *real* seconds: the Python
#: hot path sits in the single-digit-microsecond range, so the default
#: simulated-seconds buckets (1 ms floor) would collapse everything into
#: the first bucket.
DISPATCH_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5, 1e-4, 1e-3, 1e-2,
)


def _dataclass_counters(stats) -> dict[str, int | float]:
    """Flatten a slots-dataclass stats object: numeric fields become
    metrics; dict-valued fields become ``<field>.<key>`` metrics."""
    out: dict[str, int | float] = {}
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, dict):
            for key, sub in value.items():
                out[f"{f.name}.{key}"] = sub
        elif isinstance(value, (int, float)):
            out[f.name] = value
    return out


def watch_cache_stats(registry: MetricsRegistry, prefix: str, stats: "CacheStats") -> None:
    registry.attach(prefix, lambda: _dataclass_counters(stats))


def watch_resolver_stats(registry: MetricsRegistry, prefix: str, stats: "ResolverStats") -> None:
    registry.attach(prefix, lambda: _dataclass_counters(stats))


def watch_cache_node_stats(registry: MetricsRegistry, prefix: str, stats: "CacheNodeStats") -> None:
    registry.attach(prefix, lambda: _dataclass_counters(stats))


def watch_ecmp(registry: MetricsRegistry, prefix: str, router: "ECMPRouter") -> None:
    def collect() -> dict[str, int | float]:
        out = _dataclass_counters(router.stats)
        out["servers"] = len(router)
        return out

    registry.attach(prefix, collect)


def watch_sklookup(registry: MetricsRegistry, prefix: str, program: "SkLookupProgram") -> None:
    def collect() -> dict[str, int | float]:
        out: dict[str, int | float] = dict(program.stats)
        out["rules"] = len(program.rules())
        out["map_size"] = len(program.map)
        out["map_replacements"] = program.map.replacements
        return out

    registry.attach(prefix, collect)


def watch_lookup_path(registry: MetricsRegistry, prefix: str, path: "LookupPath") -> None:
    """Per-stage dispatch counters plus the batch-path accounting.

    Covers the Figure 5a pipeline: packets resolved per stage (connected /
    sk_lookup / listener / wildcard / dropped / miss), how many batches the
    batched entry point ran, and how many packets they carried."""

    def collect() -> dict[str, int | float]:
        out: dict[str, int | float] = {
            f"stage.{stage.value}": count for stage, count in path.stage_counts.items()
        }
        out["batches"] = path.batches
        out["batch_packets"] = path.batch_packets
        out["programs"] = len(path.programs())
        return out

    registry.attach(prefix, collect)


def time_lookup_path(
    registry: MetricsRegistry,
    name: str,
    path: "LookupPath",
    timer: "Callable[[], float]",
):
    """Attach a dispatch-latency histogram to a lookup path's batch entry.

    ``timer`` is a float-seconds callable — benchmarks pass
    ``time.perf_counter``.  It is *injected* rather than imported here so
    simulation code stays wall-clock-free (the DT001 lint runs over this
    package); only measurement harnesses opt into real time.  Each
    ``dispatch_batch`` call observes its mean per-packet latency.
    """
    hist = registry.histogram(
        name,
        buckets=DISPATCH_LATENCY_BUCKETS,
        help="mean per-packet dispatch latency per batch (real seconds)",
    )
    path.timer = timer
    path.latency_hist = hist
    return hist


def watch_fault_timeline(registry: MetricsRegistry, prefix: str, timeline: "FaultTimeline") -> None:
    def collect() -> dict[str, int | float]:
        out: dict[str, int | float] = {"events": len(timeline)}
        for event in timeline:
            out[f"by_kind.{event.kind}"] = out.get(f"by_kind.{event.kind}", 0) + 1
            out[f"by_phase.{event.phase}"] = out.get(f"by_phase.{event.phase}", 0) + 1
        return out

    registry.attach(prefix, collect)


def watch_datacenter_load(
    registry: MetricsRegistry, prefix: str, dc: "Datacenter"
) -> None:
    """Ingress-pressure gauges for one PoP: connections shed by the
    capacity cap, SYNs dropped by ingress loss, and the live fault knobs
    (``capacity`` gauge is 0 when uncapped, ``ingress_loss`` the current
    drop probability) — the surface chaos invariants read to tell "PoP
    shedding under overload" from "PoP silently blackholing"."""

    def collect() -> dict[str, int | float]:
        return {
            "sheds": dc.sheds,
            "syn_drops": dc.syn_drops,
            "capacity": dc.capacity or 0,
            "ingress_loss": dc.ingress_loss,
        }

    registry.attach(prefix, collect)


def watch_flow_engine(registry: MetricsRegistry, prefix: str, engine: "FlowEngine") -> None:
    """The columnar flow engine's per-batch rollup, plus which hash
    backend is live (``backend.<name>`` gauge) — the engine itself never
    increments a counter per flow, so this collector is the only place its
    throughput accounting surfaces."""

    def collect() -> dict[str, int | float]:
        out = _dataclass_counters(engine.stats)
        out[f"backend.{engine.backend.name}"] = 1
        return out

    registry.attach(prefix, collect)


def watch_speakers(
    registry: MetricsRegistry, prefix: str, sim: "SpeakerSimulation"
) -> None:
    """Event-driven BGP surface: the :class:`ConvergenceTracker` counters
    plus live gauges (pending messages, down sessions, suppressed routes)
    and a convergence-duration histogram fed by every window the tracker
    closes from now on (already-closed windows are replayed once)."""
    tracker = sim.tracker

    def collect() -> dict[str, int | float]:
        out: dict[str, int | float] = {
            k: v for k, v in tracker.snapshot().items()
            if isinstance(v, (int, float))
        }
        out["pending_messages"] = sim.pending_messages()
        out["sessions_down"] = len(sim.sessions_down())
        out["suppressed_routes"] = sim.suppressed_count()
        out["active_flaps"] = len(sim.active_flaps())
        return out

    registry.attach(prefix, collect)
    hist = registry.histogram(
        f"{prefix}.convergence_s",
        help="BGP convergence window duration (simulated seconds)",
    )
    for opened, closed in tracker.windows:
        hist.observe(closed - opened)
    tracker.observers.append(hist.observe)


def watch_cdn(registry: MetricsRegistry, cdn: "CDN", prefix: str = "cdn") -> None:
    """Attach every edge-side surface of a deployment in one call.

    Per datacenter: the ECMP router and the per-server sk_lookup programs
    and edge-cache node stats; plus one rollup collector for request and
    connection totals.
    """
    for dc_name in sorted(cdn.datacenters):
        dc = cdn.datacenters[dc_name]
        watch_ecmp(registry, f"{prefix}.{dc_name}.ecmp", dc.ecmp)
        watch_datacenter_load(registry, f"{prefix}.{dc_name}.load", dc)
        for server_name in sorted(dc.servers):
            server = dc.servers[server_name]

            def sk_collect(server=server) -> dict[str, int | float]:
                # Read through the server: crash/restore replaces the
                # attached program, and the collector must follow it.
                program = server._sk_program
                if program is None:
                    return {"attached": 0}
                out: dict[str, int | float] = dict(program.stats)
                out["attached"] = 1
                out["rules"] = len(program.rules())
                out["map_size"] = len(program.map)
                out["map_replacements"] = program.map.replacements
                return out

            registry.attach(f"{prefix}.{dc_name}.sklookup.{server_name}", sk_collect)
            watch_lookup_path(
                registry, f"{prefix}.{dc_name}.lookup.{server_name}",
                server.lookup_path,
            )
            node = dc.cache.nodes().get(server_name)
            if node is not None:
                watch_cache_node_stats(
                    registry, f"{prefix}.{dc_name}.edge_cache.{server_name}",
                    node.stats,
                )

    def rollup() -> dict[str, int | float]:
        return {
            "requests": cdn.total_requests(),
            "connections": sum(
                dc.connection_count() for dc in cdn.datacenters.values()
            ),
            "sockets": sum(
                dc.total_socket_count() for dc in cdn.datacenters.values()
            ),
        }

    registry.attach(f"{prefix}.totals", rollup)

    # Event-driven routing engines expose a convergence tracker; the
    # static BGPSimulation has nothing time-varying worth a collector.
    sim = getattr(getattr(cdn, "network", None), "sim", None)
    if getattr(sim, "incremental", False):
        watch_speakers(registry, f"{prefix}.bgp", sim)


def watch_serve(registry: MetricsRegistry, prefix: str, pool: "WorkerPool") -> None:
    """Make a :class:`~repro.serve.workers.WorkerPool` observable.

    ``<prefix>.*`` carries the pool-wide totals (queries, responses,
    truncations, malformed drops, TCP sessions, drain markers, and the
    merged latency histogram as ``latency_bucket_le_*`` counters);
    ``<prefix>.w<i>.*`` carries the current generation's per-worker rows.
    Pull-based like every adapter here: workers write shared memory on the
    hot path, aggregation happens only when someone snapshots — and the
    totals stay readable after the pool stops (retired generations are
    folded in, not lost).
    """
    registry.attach(prefix, pool.snapshot)
    for index in range(pool.workers):
        def row(index: int = index) -> dict[str, int | float]:
            rows = pool.worker_snapshots()
            return rows[index] if index < len(rows) else {}

        registry.attach(f"{prefix}.w{index}", row)


#: Drain-latency histogram buckets: seconds from a step's enactment to a
#: tracked connection leaving the vacated space.  TTL-scale, not µs-scale.
DRAIN_LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0, 120.0)


def watch_campaign(registry: MetricsRegistry, prefix: str, engine) -> None:
    """Make a :class:`~repro.campaign.engine.CampaignEngine` observable.

    ``<prefix>.*`` gauges carry the state machine (state code, step
    cursor, holds, rollbacks, live drain worklist, drain/drop tallies);
    ``<prefix>.drain_s`` is a histogram fed every drain latency via the
    engine's observer hook — the same append pattern as
    :func:`watch_speakers`.
    """
    registry.attach(prefix, engine.status)
    hist = registry.histogram(
        f"{prefix}.drain_s",
        buckets=DRAIN_LATENCY_BUCKETS,
        help="established-connection drain latency (simulated seconds "
             "from step enactment)",
    )
    engine.drain_observers.append(hist.observe)
