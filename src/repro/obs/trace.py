"""Structured span tracing on the simulated clock.

The two critical paths the paper's claims live or die on:

* **dispatch** — query → policy match → mint → ECMP → sk_lookup dispatch
  → serve (§3.2/§3.3: the per-query answer and per-packet steering that
  make addressing a pure control-plane decision);
* **mitigation** — fault → detect → precheck → rebind → recover (§3.4/§6:
  agility as a robustness primitive, bounded by TTL + detection).

A :class:`TraceRecorder` collects :class:`SpanEvent` entries along both.
Every timestamp is *simulated* seconds from the shared
:class:`~repro.clock.Clock`; a span's duration is therefore the model's
claim about elapsed time, not the host machine's scheduling noise — which
is what makes per-phase durations comparable across runs and machines.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from ..clock import Clock

__all__ = ["SpanEvent", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One completed phase of one trace.

    ``trace`` groups the phases of a single logical operation (one query,
    one failover); ``phase`` is the step name within it.
    """

    trace: str
    phase: str
    start: float
    end: float
    detail: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.trace}/{self.phase} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Append-only span collection over one simulated clock."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._spans: list[SpanEvent] = []
        self._seq = 0

    def next_trace_id(self, kind: str) -> str:
        """A fresh deterministic trace id (``kind:N``) for a new operation."""
        self._seq += 1
        return f"{kind}:{self._seq}"

    # -- recording -------------------------------------------------------------

    def record(self, trace: str, phase: str, start: float, end: float,
               detail: str = "") -> SpanEvent:
        event = SpanEvent(trace, phase, start, end, detail)
        self._spans.append(event)
        return event

    @contextmanager
    def span(self, trace: str, phase: str, detail: str = ""):
        """Measure a phase in simulated time::

            with tracer.span("failover:1", "rebind"):
                controller.swap_pool(...)
        """
        start = self.clock.now()
        try:
            yield
        finally:
            self.record(trace, phase, start, self.clock.now(), detail)

    def mark(self, trace: str, phase: str, detail: str = "") -> SpanEvent:
        """A zero-duration event at the current instant."""
        now = self.clock.now()
        return self.record(trace, phase, now, now, detail)

    # -- queries ---------------------------------------------------------------

    def spans(self, trace: str | None = None, phase: str | None = None) -> list[SpanEvent]:
        return [
            s for s in self._spans
            if (trace is None or s.trace == trace)
            and (phase is None or s.phase == phase)
        ]

    def phase_durations(self, trace: str | None = None) -> dict[str, float]:
        """Total simulated seconds per phase, insertion-ordered."""
        out: dict[str, float] = {}
        for s in self._spans:
            if trace is not None and s.trace != trace:
                continue
            out[s.phase] = out.get(s.phase, 0.0) + s.duration
        return out

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready: the span list plus a per-phase duration rollup."""
        return {
            "spans": [
                {
                    "trace": s.trace,
                    "phase": s.phase,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    **({"detail": s.detail} if s.detail else {}),
                }
                for s in self._spans
            ],
            "phase_durations": self.phase_durations(),
        }
