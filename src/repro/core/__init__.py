"""The paper's core contribution: policy-first agile addressing.

Public API::

    from repro.core import (
        AddressPool, Policy, PolicyEngine, PolicyAnswerSource,
        RandomSelection, AgilityController,
    )

Build an :class:`AddressPool` over an advertised prefix, attach it to a
:class:`Policy` matched on attributes (PoP, account type, family), install
the engine behind a :class:`PolicyAnswerSource`, and plug that into any
:class:`~repro.dns.server.AuthoritativeServer` — e.g. via
:meth:`repro.edge.cdn.CDN.set_answer_source`.
"""

from .agility import AgilityController, AgilityOperation
from .authoritative import PolicyAnswerLog, PolicyAnswerSource
from .policy import Policy, PolicyAttributes, PolicyDecision, PolicyEngine
from .pool import AddressPool, PoolError
from .spec import (
    AttributeDomain,
    PolicySpecError,
    VerificationIssue,
    compile_and_verify,
    compile_policy,
    verify_policy_set,
)
from .strategies import (
    EcsPerPopAssignment,
    HashedAssignment,
    MappedAssignment,
    PerPopAssignment,
    RandomSelection,
    SelectionContext,
    SelectionStrategy,
    StaticAssignment,
)

__all__ = [
    "AttributeDomain",
    "PolicySpecError",
    "VerificationIssue",
    "compile_and_verify",
    "compile_policy",
    "verify_policy_set",
    "EcsPerPopAssignment",
    "AgilityController",
    "AgilityOperation",
    "PolicyAnswerLog",
    "PolicyAnswerSource",
    "Policy",
    "PolicyAttributes",
    "PolicyDecision",
    "PolicyEngine",
    "AddressPool",
    "PoolError",
    "HashedAssignment",
    "MappedAssignment",
    "PerPopAssignment",
    "RandomSelection",
    "SelectionContext",
    "SelectionStrategy",
    "StaticAssignment",
]
