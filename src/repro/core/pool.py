"""Address pools: the schedulable resource the paper turns addresses into.

§3.2: "the set of policy attributes is associated with an address pool
described by a prefix w.x.y.z/b" — and §4.2's timetable varies the in-use
portion of the advertised /20: the full 4096 addresses, then a /24 (256),
then a single /32.  :class:`AddressPool` therefore separates what is
*advertised* (reachability; fixed in BGP) from what is *active* (what DNS
hands out; changeable per-query at runtime).  Shrinking or moving the
active set is a control-plane operation that touches neither routing nor
listening sockets.
"""

from __future__ import annotations

import random

from ..netsim.addr import IPAddress, Prefix

__all__ = ["AddressPool", "PoolError"]


class PoolError(ValueError):
    """Invalid pool configuration (active set outside advertisement, etc.)."""


class AddressPool:
    """An advertised prefix plus the currently active selectable subset.

    The active set is either a sub-prefix (the common case — /20 → /24 →
    /32) or an explicit address tuple ("the pool can consist of any set of
    addresses", §3.2).  All selection strategies draw only from the active
    set; reachability always covers the full advertisement.
    """

    def __init__(
        self,
        advertised: Prefix,
        active: "Prefix | tuple[IPAddress, ...] | None" = None,
        name: str = "",
    ) -> None:
        self.advertised = advertised
        self.name = name or str(advertised)
        self._active_prefix: Prefix | None = None
        self._active_list: tuple[IPAddress, ...] | None = None
        self.generation = 0  # bumped on every active-set change
        self.set_active(active if active is not None else advertised)

    # -- configuration --------------------------------------------------------

    def set_active(self, active: "Prefix | tuple[IPAddress, ...] | list[IPAddress]") -> None:
        """Re-scope the selectable subset; raises if outside the advertisement."""
        if isinstance(active, Prefix):
            if not self.advertised.contains(active):
                raise PoolError(f"active {active} outside advertised {self.advertised}")
            self._active_prefix = active
            self._active_list = None
        else:
            addresses = tuple(active)
            if not addresses:
                raise PoolError("active address list cannot be empty")
            for address in addresses:
                if address not in self.advertised:
                    raise PoolError(f"{address} outside advertised {self.advertised}")
            self._active_prefix = None
            self._active_list = addresses
        self.generation += 1

    @property
    def active_prefix(self) -> Prefix | None:
        return self._active_prefix

    def active_addresses(self) -> "tuple[IPAddress, ...] | None":
        """The explicit active address list, or ``None`` when the active
        set is a prefix (use :attr:`active_prefix` then)."""
        return self._active_list

    # -- geometry ----------------------------------------------------------------

    @property
    def family(self) -> int:
        return self.advertised.family

    @property
    def size(self) -> int:
        """Number of currently selectable addresses."""
        if self._active_prefix is not None:
            return self._active_prefix.num_addresses
        assert self._active_list is not None
        return len(self._active_list)

    def contains(self, address: IPAddress) -> bool:
        """Is ``address`` in the *active* set?"""
        if self._active_prefix is not None:
            return address in self._active_prefix
        assert self._active_list is not None
        return address in self._active_list

    def reachable(self, address: IPAddress) -> bool:
        """Is ``address`` within the advertisement (i.e. routable to us)?"""
        return address in self.advertised

    # -- selection primitives -------------------------------------------------------

    def random_address(self, rng: random.Random) -> IPAddress:
        """Uniform draw from the active set — §3.2 steps (4)+(5)."""
        if self._active_prefix is not None:
            return self._active_prefix.random_address(rng)
        assert self._active_list is not None
        return rng.choice(self._active_list)

    def address_at(self, index: int) -> IPAddress:
        """Deterministic indexing, used by per-PoP and k-ary slice policies."""
        if self._active_prefix is not None:
            return self._active_prefix.address_at(index)
        assert self._active_list is not None
        n = len(self._active_list)
        if not -n <= index < n:
            raise IndexError(f"index {index} out of range for pool of {n}")
        return self._active_list[index % n]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        active = self._active_prefix if self._active_prefix is not None else f"{self.size} addresses"
        return f"AddressPool({self.name!r}, advertised={self.advertised}, active={active})"

    # -- reporting ---------------------------------------------------------------

    def reduction_versus(self, baseline_addresses: int) -> float:
        """Fractional address-usage reduction against a baseline count.

        §4.2 reports 94.4 % for one /20 versus 18 /20s and 99.7 % for a
        /24; this helper regenerates those numbers in E7.
        """
        if baseline_addresses <= 0:
            raise ValueError("baseline must be positive")
        return 1.0 - (self.size / baseline_addresses)
