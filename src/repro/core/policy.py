"""Policies and the policy engine: matching queries without names.

Figure 3b: "Our architecture matches policy without name … For: PoP
location, account type → Use: a.b.c.d/xx".  A :class:`Policy` is a set of
attribute constraints plus an address pool, a selection strategy, and a
TTL.  The :class:`PolicyEngine` evaluates policies in priority order and
returns the first match; queries matching no policy "are resolved as
normal" (§4.3) by whatever fallback the caller wires in.

Attribute constraints are value sets per key — deliberately not arbitrary
code: §4.3 leaves "safe and verifiable policy expression" as future work,
and set-membership constraints are the verifiable core that the deployment
actually used (datacenter ∈ {…} ∧ account_type ∈ {…}).
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from ..netsim.addr import IPAddress
from .pool import AddressPool
from .strategies import RandomSelection, SelectionContext, SelectionStrategy

__all__ = ["PolicyAttributes", "Policy", "PolicyEngine", "PolicyDecision"]


@dataclass(frozen=True, slots=True)
class PolicyAttributes:
    """The attribute tuple a query presents for matching.

    ``hostname`` is carried for *strategies* that need it (static
    baselines, DoS maps); the paper's randomizing policies never read it —
    a property tested explicitly.  ``client_subnet`` is the EDNS Client
    Subnet (RFC 7871) when the resolver sent one; like the hostname it is
    strategy input, not a match key (matching on unbounded prefixes is not
    statically verifiable — see :mod:`repro.core.spec`).
    """

    pop: str
    account_type: str | None = None
    family: int = 4  # 4 for A queries, 6 for AAAA
    hostname: str = ""
    client_subnet: str | None = None

    def as_mapping(self) -> dict[str, object]:
        return {
            "pop": self.pop,
            "account_type": self.account_type,
            "family": self.family,
        }


class Policy:
    """One match→pool rule.

    ``match`` maps attribute names (``pop``, ``account_type``, ``family``)
    to the set of acceptable values; absent keys are unconstrained.  Lower
    ``priority`` evaluates first.
    """

    def __init__(
        self,
        name: str,
        pool: AddressPool,
        match: dict[str, set] | None = None,
        strategy: SelectionStrategy | None = None,
        ttl: int = 30,
        priority: int = 100,
    ) -> None:
        if ttl < 0:
            raise ValueError("TTL must be non-negative")
        self.name = name
        self.pool = pool
        self.match = {k: set(v) for k, v in (match or {}).items()}
        self.strategy = strategy or RandomSelection()
        self.ttl = ttl
        self.priority = priority
        self.hits = 0
        _known = {"pop", "account_type", "family"}
        unknown = set(self.match) - _known
        if unknown:
            raise ValueError(f"policy {name!r}: unknown attribute keys {sorted(unknown)}")

    def matches(self, attrs: PolicyAttributes) -> bool:
        mapping = attrs.as_mapping()
        return all(mapping.get(key) in allowed for key, allowed in self.match.items())

    def select(self, attrs: PolicyAttributes, rng: random.Random) -> IPAddress:
        ctx = SelectionContext(
            hostname=attrs.hostname,
            pop=attrs.pop,
            account_type=attrs.account_type,
            client_subnet=attrs.client_subnet,
        )
        return self.strategy.select(self.pool, ctx, rng)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Policy({self.name!r}, match={self.match}, pool={self.pool.name!r})"


@dataclass(frozen=True, slots=True)
class PolicyDecision:
    """The engine's verdict for one query."""

    policy: Policy
    address: IPAddress
    ttl: int


class PolicyEngine:
    """Ordered policy evaluation with runtime add/remove.

    Policies sort by (priority, insertion order); the first match wins.
    Returning ``None`` means "no policy applies — resolve conventionally".
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        self._policies: list[Policy] = []
        self._rng = rng or random.Random(0xA91)
        self.evaluations = 0
        self.matches = 0

    # -- management ----------------------------------------------------------

    def add(self, policy: Policy) -> None:
        if any(p.name == policy.name for p in self._policies):
            raise ValueError(f"duplicate policy name {policy.name!r}")
        self._policies.append(policy)
        self._policies.sort(key=lambda p: p.priority)

    def remove(self, name: str) -> Policy:
        for i, policy in enumerate(self._policies):
            if policy.name == name:
                return self._policies.pop(i)
        raise KeyError(f"no policy named {name!r}")

    def get(self, name: str) -> Policy:
        for policy in self._policies:
            if policy.name == name:
                return policy
        raise KeyError(f"no policy named {name!r}")

    def policies(self) -> list[Policy]:
        return list(self._policies)

    def __len__(self) -> int:
        return len(self._policies)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, attrs: PolicyAttributes) -> PolicyDecision | None:
        """First-match policy evaluation; selects an address on match.

        :meth:`evaluate_batch` of one — scalar and batched evaluation share
        one code path so their decisions and counters cannot drift."""
        return self.evaluate_batch((attrs,))[0]

    def evaluate_batch(
        self, batch: Sequence[PolicyAttributes]
    ) -> list[PolicyDecision | None]:
        """Evaluate many attribute tuples; counters folded once per batch.

        Selection draws from the engine RNG in item order, so a batch
        produces the same address sequence as scalar calls in a loop.  The
        fold runs even if a strategy raises partway: the in-flight item has
        already been counted (evaluations, and hits/matches when it
        matched), exactly as the scalar path counts before selecting.
        """
        policies = self._policies
        rng = self._rng
        evaluations = matches = 0
        hit_counts: Counter[Policy] = Counter()
        decisions: list[PolicyDecision | None] = []
        append = decisions.append
        try:
            for attrs in batch:
                evaluations += 1
                decision = None
                for policy in policies:
                    if policy.pool.family != attrs.family:
                        continue
                    if policy.matches(attrs):
                        hit_counts[policy] += 1
                        matches += 1
                        address = policy.select(attrs, rng)
                        decision = PolicyDecision(
                            policy=policy, address=address, ttl=policy.ttl
                        )
                        break
                append(decision)
        finally:
            self.evaluations += evaluations
            self.matches += matches
            for policy, n in hit_counts.items():
                policy.hits += n
        return decisions
