"""Declarative policy specifications with static verification.

§4.3 closes with the open question: "how best to design and allow more
expressive policies?  Safe and verifiable policy expression and processing
is left for future work."  This module is that future work, scoped to what
a CDN control plane actually needs before pushing a policy set to every
PoP's authoritative DNS:

* a **declarative spec** (plain dicts — JSON/YAML-shaped, no code) that
  compiles to the runtime :class:`~repro.core.policy.Policy` objects;
* a **static verifier** that rejects unsafe sets before deployment:

  - pools escaping the advertised address space (answering with addresses
    nobody routes or terminates — the one way this architecture can break
    user traffic);
  - family mismatches (a v6 pool on an A-record policy);
  - unknown attributes or strategy names (typos fail closed);
  - **shadowing**: a policy that can never match because an earlier one
    covers it completely — dead config is a misconfiguration signal;
  - **coverage gaps**: attribute combinations that fall through to the
    fallback, reported (not rejected) so "resolved as normal" is a
    decision, not an accident.

The attribute domains are finite (PoPs, account types, families), so
shadowing and coverage are decided exactly by enumeration over the
declared domain — no SMT machinery needed at these sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..netsim.addr import IPv4, IPv6, Prefix, parse_prefix
from .policy import Policy, PolicyAttributes, PolicyEngine
from .pool import AddressPool
from .strategies import (
    HashedAssignment,
    MappedAssignment,
    PerPopAssignment,
    RandomSelection,
    SelectionStrategy,
    StaticAssignment,
)

__all__ = [
    "PolicySpecError",
    "VerificationIssue",
    "AttributeDomain",
    "compile_policy",
    "verify_policy_set",
    "compile_and_verify",
]

_MATCH_KEYS = {"pop", "account_type", "family"}


class PolicySpecError(ValueError):
    """A spec failed compilation or verification."""


@dataclass(frozen=True, slots=True)
class VerificationIssue:
    """One finding from the verifier."""

    severity: str          # "error" | "warning"
    policy: str | None     # None for set-level findings
    kind: str
    detail: str

    def __str__(self) -> str:
        where = f"[{self.policy}] " if self.policy else ""
        return f"{self.severity}: {where}{self.kind}: {self.detail}"


@dataclass(frozen=True, slots=True)
class AttributeDomain:
    """The finite universe policies are verified against."""

    pops: frozenset[str]
    account_types: frozenset[str] = frozenset({"free", "pro", "business", "enterprise"})
    families: frozenset[int] = frozenset({IPv4, IPv6})

    def combinations(self):
        """Every (pop, account_type, family) point, plus account_type=None
        (hostnames outside the registry present no account)."""
        accounts = [*sorted(self.account_types), None]
        for pop, account, family in itertools.product(
            sorted(self.pops), accounts, sorted(self.families)
        ):
            yield PolicyAttributes(pop=pop, account_type=account, family=family)


def _build_strategy(name: str, params: dict) -> SelectionStrategy:
    factories = {
        "random": lambda p: RandomSelection(),
        "hashed": lambda p: HashedAssignment(),
        "static": lambda p: StaticAssignment(per_address=int(p.get("per_address", 1))),
        "per_pop": lambda p: PerPopAssignment(list(p["pop_order"])),
        "mapped": lambda p: MappedAssignment(),
    }
    factory = factories.get(name)
    if factory is None:
        raise PolicySpecError(
            f"unknown strategy {name!r}; expected one of {sorted(factories)}"
        )
    try:
        return factory(params)
    except KeyError as exc:
        raise PolicySpecError(f"strategy {name!r} missing parameter {exc}") from exc


def compile_policy(spec: dict) -> Policy:
    """Compile one declarative policy spec.

    Spec shape::

        {
          "name": "randomize-free",
          "pool": {"advertised": "192.0.0.0/20", "active": "192.0.2.0/24"},
          "match": {"pop": ["iad", "ord"], "account_type": ["free"]},
          "strategy": "random",            # optional, with "params": {...}
          "ttl": 30,                        # optional
          "priority": 100,                  # optional
        }
    """
    unknown = set(spec) - {"name", "pool", "match", "strategy", "params", "ttl", "priority"}
    if unknown:
        raise PolicySpecError(f"unknown spec keys: {sorted(unknown)}")
    try:
        name = spec["name"]
        pool_spec = spec["pool"]
        advertised = parse_prefix(pool_spec["advertised"])
    except KeyError as exc:
        raise PolicySpecError(f"spec missing required key {exc}") from exc
    except ValueError as exc:
        raise PolicySpecError(f"bad prefix in policy {spec.get('name')!r}: {exc}") from exc

    active = pool_spec.get("active")
    try:
        pool = AddressPool(
            advertised,
            active=parse_prefix(active) if active is not None else None,
            name=pool_spec.get("name", f"{name}-pool"),
        )
    except ValueError as exc:
        raise PolicySpecError(f"policy {name!r}: {exc}") from exc

    raw_match = spec.get("match", {})
    bad_keys = set(raw_match) - _MATCH_KEYS
    if bad_keys:
        raise PolicySpecError(f"policy {name!r}: unknown match keys {sorted(bad_keys)}")
    match = {key: set(values) for key, values in raw_match.items()}

    strategy = _build_strategy(spec.get("strategy", "random"), spec.get("params", {}))
    try:
        return Policy(
            name=name,
            pool=pool,
            match=match,
            strategy=strategy,
            ttl=int(spec.get("ttl", 30)),
            priority=int(spec.get("priority", 100)),
        )
    except ValueError as exc:
        raise PolicySpecError(f"policy {name!r}: {exc}") from exc


def verify_policy_set(
    policies: list[Policy],
    domain: AttributeDomain,
    advertised_space: list[Prefix],
) -> list[VerificationIssue]:
    """Statically verify a compiled policy set against its deployment.

    ``advertised_space`` is what BGP announces and the edge terminates;
    every pool must sit inside it.  Returns all findings; callers treat
    any ``severity == "error"`` as deploy-blocking (see
    :func:`compile_and_verify`).
    """
    issues: list[VerificationIssue] = []

    for policy in policies:
        if not any(p.contains(policy.pool.advertised) for p in advertised_space):
            issues.append(VerificationIssue(
                "error", policy.name, "unrouted-pool",
                f"pool {policy.pool.advertised} is outside the advertised space",
            ))
        for key, values in policy.match.items():
            domain_values: set = {
                "pop": set(domain.pops),
                "account_type": set(domain.account_types),
                "family": set(domain.families),
            }[key]
            impossible = values - domain_values
            if impossible:
                issues.append(VerificationIssue(
                    "error", policy.name, "impossible-match",
                    f"{key} values {sorted(map(str, impossible))} not in the domain",
                ))
        declared_family = policy.match.get("family")
        if declared_family and policy.pool.family not in declared_family:
            issues.append(VerificationIssue(
                "error", policy.name, "family-mismatch",
                f"pool is IPv{policy.pool.family} but match requires "
                f"family in {sorted(declared_family)}",
            ))

    # Shadowing & coverage by exact enumeration over the finite domain.
    ordered = sorted(policies, key=lambda p: p.priority)
    first_match: dict[str, int] = {p.name: 0 for p in ordered}
    uncovered = 0
    total = 0
    for attrs in domain.combinations():
        total += 1
        hit = None
        for policy in ordered:
            if policy.pool.family == attrs.family and policy.matches(attrs):
                hit = policy
                break
        if hit is None:
            uncovered += 1
        else:
            first_match[hit.name] += 1
    for policy in ordered:
        if first_match[policy.name] == 0:
            issues.append(VerificationIssue(
                "error", policy.name, "shadowed",
                "no attribute combination reaches this policy "
                "(fully shadowed by higher-priority policies or empty match)",
            ))
    if uncovered:
        issues.append(VerificationIssue(
            "warning", None, "coverage-gap",
            f"{uncovered}/{total} attribute combinations fall through to the "
            "conventional fallback",
        ))
    return issues


def compile_and_verify(
    specs: list[dict],
    domain: AttributeDomain,
    advertised_space: list[Prefix],
    engine: PolicyEngine | None = None,
) -> PolicyEngine:
    """Compile specs, verify the set, install into an engine — or raise.

    This is the control-plane entry point: nothing reaches the serving
    path unless verification passes (warnings are tolerated, errors are
    not).
    """
    policies = [compile_policy(spec) for spec in specs]
    names = [p.name for p in policies]
    if len(set(names)) != len(names):
        raise PolicySpecError(f"duplicate policy names in set: {names}")
    issues = verify_policy_set(policies, domain, advertised_space)
    errors = [issue for issue in issues if issue.severity == "error"]
    if errors:
        raise PolicySpecError(
            "policy set rejected:\n" + "\n".join(f"  {e}" for e in errors)
        )
    engine = engine or PolicyEngine()
    for policy in policies:
        engine.add(policy)
    return engine
