"""Address-selection strategies: how a matched policy picks an address.

§3.2's deployment default is per-query uniform random selection — the
headline mechanism.  The other strategies exist because the paper uses
them too:

* :class:`StaticAssignment` — the pre-agility baseline: each hostname is
  pinned to pool addresses by configuration (Figure 7a's world);
* :class:`HashedAssignment` — deterministic hostname→address hashing, a
  stronger static baseline that still cannot equalize load (ablation A2);
* :class:`PerPopAssignment` — a distinct address per PoP inside a shared
  anycast prefix: the route-leak detector's policy (§6, Figure 9);
* :class:`MappedAssignment` — an explicit hostname→address map updated at
  runtime: the DoS k-ary search's slicing step (§6);
* one-address is not a strategy: it is a pool whose active set is a /32.

Strategies are stateless w.r.t. queries (i.i.d. per query, §3.2: responses
for (hᵢ,hⱼ,hₖ) and (hᵢ,hᵢ,hᵢ) are equivalent), except where their *job* is
state (static/mapped assignments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.addr import IPAddress
from .pool import AddressPool

__all__ = [
    "SelectionContext",
    "SelectionStrategy",
    "RandomSelection",
    "StaticAssignment",
    "HashedAssignment",
    "PerPopAssignment",
    "EcsPerPopAssignment",
    "MappedAssignment",
]


@dataclass(frozen=True, slots=True)
class SelectionContext:
    """Query-time facts a strategy may consult."""

    hostname: str
    pop: str
    account_type: str | None = None
    client_subnet: str | None = None  # EDNS Client Subnet, textual prefix


class SelectionStrategy:
    """Pick one address from a pool for a query."""

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        raise NotImplementedError


class RandomSelection(SelectionStrategy):
    """The paper's mechanism: a fresh uniform draw per query."""

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        return pool.random_address(rng)


def _fnv(text: str) -> int:
    h = 0xCBF29CE484222325
    for byte in text.encode():
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class HashedAssignment(SelectionStrategy):
    """hostname-hash → stable pool index.

    Deterministic and stateless: every PoP computes the same binding, as a
    config-generated zone file would.  Load per address then mirrors the
    (heavy-tailed) hostname popularity distribution — the fundamental limit
    of *any* static scheme that Figure 7a exhibits.
    """

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        return pool.address_at(_fnv(ctx.hostname.lower().rstrip(".")) % pool.size)


class StaticAssignment(SelectionStrategy):
    """Explicit operator-chosen bindings, assigned once on first sight.

    Models historical allocation: hostnames are packed onto addresses in
    arrival order, ``per_address`` hostnames per IP (CDNs co-host many
    names per address, §3.2).  The assignment persists — this is the
    "slow to plan, costly to execute" world the paper leaves behind.
    """

    def __init__(self, per_address: int = 1) -> None:
        if per_address <= 0:
            raise ValueError("per_address must be positive")
        self.per_address = per_address
        self._assignments: dict[str, int] = {}
        self._next = 0

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        key = ctx.hostname.lower().rstrip(".")
        index = self._assignments.get(key)
        if index is None:
            index = (self._next // self.per_address) % pool.size
            self._assignments[key] = index
            self._next += 1
        return pool.address_at(index % pool.size)

    def assignment_count(self) -> int:
        return len(self._assignments)


class PerPopAssignment(SelectionStrategy):
    """Each PoP answers with its own dedicated address from the pool.

    §6: "a policy can be expressed in DNS so that each PoP expects to
    receive traffic on a unique address … all or most of the ensuing
    request traffic at each PoP should arrive on its corresponding IP."
    Unknown PoPs get deterministic overflow slots after the known ones.
    """

    def __init__(self, pop_order: list[str]) -> None:
        if len(set(pop_order)) != len(pop_order):
            raise ValueError("duplicate PoPs in pop_order")
        self._index = {pop: i for i, pop in enumerate(pop_order)}

    def address_for_pop(self, pool: AddressPool, pop: str) -> IPAddress:
        index = self._index.get(pop)
        if index is None:
            index = len(self._index) + (_fnv(pop) % max(1, pool.size - len(self._index)))
        return pool.address_at(index % pool.size)

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        return self.address_for_pop(pool, ctx.pop)

    def expected_pop(self, pool: AddressPool, address: IPAddress) -> str | None:
        """Invert the mapping: which PoP should traffic on ``address`` hit?"""
        for pop, index in self._index.items():
            if pool.address_at(index % pool.size) == address:
                return pop
        return None


class EcsPerPopAssignment(SelectionStrategy):
    """Per-PoP assignment keyed on the *client's* catchment, via ECS.

    The plain :class:`PerPopAssignment` hands out the address of the PoP
    the *query* arrived at — correct only when resolver and client share a
    catchment.  §6's measurement experiment shows they often don't, which
    puts legitimate "bleed" on other PoPs' addresses and forces the leak
    detector to run with noise thresholds.

    When the resolver forwards an EDNS Client Subnet, the authoritative
    can instead look up which PoP the *client's prefix* would be routed to
    and answer with that PoP's unique address — removing the mismatch at
    its source.  ``catchment_of`` is the control-plane oracle (in the
    simulator, a closure over the anycast substrate; in production, a
    BGP-informed geo map).  Queries without ECS fall back to
    arrival-PoP assignment.
    """

    def __init__(self, per_pop: PerPopAssignment, catchment_of) -> None:
        """``catchment_of(prefix_text) -> pop name | None``."""
        self.per_pop = per_pop
        self.catchment_of = catchment_of

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        pop = ctx.pop
        if ctx.client_subnet is not None:
            client_pop = self.catchment_of(ctx.client_subnet)
            if client_pop is not None:
                pop = client_pop
        return self.per_pop.address_for_pop(pool, pop)


class MappedAssignment(SelectionStrategy):
    """An explicit, runtime-mutable hostname→address map with a fallback.

    The DoS k-ary search (§6) repeatedly re-partitions affected hostnames
    onto slice addresses; each round is a bulk :meth:`assign` call.  Lookups
    for unmapped hostnames fall back to ``fallback`` (default: random).
    """

    def __init__(self, fallback: SelectionStrategy | None = None) -> None:
        self.fallback = fallback or RandomSelection()
        self._map: dict[str, IPAddress] = {}

    def assign(self, hostname: str, address: IPAddress) -> None:
        self._map[hostname.lower().rstrip(".")] = address

    def assign_many(self, hostnames: "list[str] | set[str]", address: IPAddress) -> None:
        for hostname in hostnames:
            self.assign(hostname, address)

    def clear(self) -> None:
        self._map.clear()

    def mapped_count(self) -> int:
        return len(self._map)

    def address_of(self, hostname: str) -> IPAddress | None:
        return self._map.get(hostname.lower().rstrip("."))

    def select(self, pool: AddressPool, ctx: SelectionContext, rng: random.Random) -> IPAddress:
        address = self._map.get(ctx.hostname.lower().rstrip("."))
        if address is not None:
            return address
        return self.fallback.select(pool, ctx, rng)
