"""The policy-first authoritative answer source (Figure 3b).

§3.2's five steps, verbatim, as code:

1. a query arrives for an A or AAAA record            → ``answer()``
2. processing/validation/logging remains unchanged    → the shared
   :class:`~repro.dns.server.AuthoritativeServer` scaffolding
3. attributes match to a policy that identifies a prefix
                                                       → :class:`PolicyEngine`
4. generate a random bitstring of 32−b (or 128−b) bits → the policy's
   strategy over its :class:`AddressPool`
5. respond with prefix ‖ bitstring                     → the A/AAAA record

Queries that match no policy fall through to a conventional fallback
source ("queries that do not match are resolved as normal", §4.3) — this
is what let the deployment run one global codebase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dns.records import A, AAAA, Question, ResourceRecord, RRType
from ..dns.server import Answer, AnswerSource, QueryContext
from ..dns.wire import Rcode
from ..edge.customers import CustomerRegistry
from ..netsim.addr import IPv4, IPv6
from .policy import PolicyAttributes, PolicyDecision, PolicyEngine

if TYPE_CHECKING:
    from ..obs.trace import TraceRecorder

__all__ = ["PolicyAnswerSource", "PolicyAnswerLog"]


@dataclass(slots=True)
class PolicyAnswerLog:
    """Step-2 accounting: what the policy path answered, per policy."""

    policy_answers: int = 0
    fallback_answers: int = 0
    refused: int = 0
    by_policy: dict[str, int] = field(default_factory=dict)

    def record_policy(self, name: str) -> None:
        self.policy_answers += 1
        self.by_policy[name] = self.by_policy.get(name, 0) + 1


class PolicyAnswerSource(AnswerSource):
    """Answer A/AAAA queries from policies; everything else via fallback.

    Parameters
    ----------
    engine:
        The policy engine (step 3).
    registry:
        Maps the queried hostname to its account type — the one per-name
        fact the deployment's policy consumes.  Hostnames not in the
        registry never match account-typed policies and use the fallback.
    fallback:
        Conventional answer source for non-matching queries.  ``None``
        makes unmatched queries REFUSED (useful in unit tests; production
        always configures one).
    """

    def __init__(
        self,
        engine: PolicyEngine,
        registry: CustomerRegistry,
        fallback: AnswerSource | None = None,
        rng: random.Random | None = None,
        tracer: "TraceRecorder | None" = None,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.fallback = fallback
        self.log = PolicyAnswerLog()
        #: Optional :class:`~repro.obs.trace.TraceRecorder`: when set, every
        #: policy-path answer emits query → policy_match → mint spans (the
        #: §3.2 steps, observable per query).
        self.tracer = tracer
        self._rng = rng or random.Random(0x5EED)

    def answer(self, question: Question, context: QueryContext) -> Answer:
        if question.rrtype not in (RRType.A, RRType.AAAA):
            return self._fall_through(question, context)

        hostname = str(question.name).rstrip(".")
        account = self.registry.account_type_for(hostname)
        attrs = PolicyAttributes(
            pop=context.pop,
            account_type=account.value if account is not None else None,
            family=IPv4 if question.rrtype == RRType.A else IPv6,
            hostname=hostname,
            client_subnet=context.client_subnet,
        )
        if self.tracer is None:
            decision = self.engine.evaluate(attrs)
            if decision is None:
                return self._fall_through(question, context)
            return self._policy_answer(question, decision)

        trace = self.tracer.next_trace_id("query")
        with self.tracer.span(trace, "query", hostname):
            with self.tracer.span(trace, "policy_match"):
                decision = self.engine.evaluate(attrs)
            if decision is None:
                return self._fall_through(question, context)
            with self.tracer.span(trace, "mint", decision.policy.name):
                return self._policy_answer(question, decision)

    # -- internals -------------------------------------------------------------

    def _policy_answer(self, question: Question, decision: PolicyDecision) -> Answer:
        rdata = A(decision.address) if question.rrtype == RRType.A else AAAA(decision.address)
        record = ResourceRecord(question.name, rdata, ttl=decision.ttl)
        self.log.record_policy(decision.policy.name)
        return Answer(Rcode.NOERROR, records=(record,))

    def _fall_through(self, question: Question, context: QueryContext) -> Answer:
        if self.fallback is None:
            self.log.refused += 1
            return Answer(Rcode.REFUSED)
        self.log.fallback_answers += 1
        return self.fallback.answer(question, context)
