"""The policy-first authoritative answer source (Figure 3b).

§3.2's five steps, verbatim, as code:

1. a query arrives for an A or AAAA record            → ``answer()``
2. processing/validation/logging remains unchanged    → the shared
   :class:`~repro.dns.server.AuthoritativeServer` scaffolding
3. attributes match to a policy that identifies a prefix
                                                       → :class:`PolicyEngine`
4. generate a random bitstring of 32−b (or 128−b) bits → the policy's
   strategy over its :class:`AddressPool`
5. respond with prefix ‖ bitstring                     → the A/AAAA record

Queries that match no policy fall through to a conventional fallback
source ("queries that do not match are resolved as normal", §4.3) — this
is what let the deployment run one global codebase.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dns.records import A, AAAA, Question, ResourceRecord, RRType
from ..dns.server import Answer, AnswerSource, QueryContext
from ..dns.wire import Rcode
from ..edge.customers import CustomerRegistry
from ..netsim.addr import IPv4, IPv6
from .policy import PolicyAttributes, PolicyDecision, PolicyEngine

if TYPE_CHECKING:
    from ..obs.trace import TraceRecorder

__all__ = ["PolicyAnswerSource", "PolicyAnswerLog"]


@dataclass(slots=True)
class PolicyAnswerLog:
    """Step-2 accounting: what the policy path answered, per policy."""

    policy_answers: int = 0
    fallback_answers: int = 0
    refused: int = 0
    by_policy: dict[str, int] = field(default_factory=dict)

    def record_policy(self, name: str) -> None:
        self.policy_answers += 1
        self.by_policy[name] = self.by_policy.get(name, 0) + 1


class PolicyAnswerSource(AnswerSource):
    """Answer A/AAAA queries from policies; everything else via fallback.

    Parameters
    ----------
    engine:
        The policy engine (step 3).
    registry:
        Maps the queried hostname to its account type — the one per-name
        fact the deployment's policy consumes.  Hostnames not in the
        registry never match account-typed policies and use the fallback.
    fallback:
        Conventional answer source for non-matching queries.  ``None``
        makes unmatched queries REFUSED (useful in unit tests; production
        always configures one).
    """

    def __init__(
        self,
        engine: PolicyEngine,
        registry: CustomerRegistry,
        fallback: AnswerSource | None = None,
        rng: random.Random | None = None,
        tracer: "TraceRecorder | None" = None,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.fallback = fallback
        self.log = PolicyAnswerLog()
        #: Optional :class:`~repro.obs.trace.TraceRecorder`: when set, every
        #: policy-path answer emits query → policy_match → mint spans (the
        #: §3.2 steps, observable per query).
        self.tracer = tracer
        self._rng = rng or random.Random(0x5EED)

    def answer(self, question: Question, context: QueryContext) -> Answer:
        if question.rrtype not in (RRType.A, RRType.AAAA):
            return self._fall_through(question, context)

        hostname = str(question.name).rstrip(".")
        account = self.registry.account_type_for(hostname)
        attrs = PolicyAttributes(
            pop=context.pop,
            account_type=account.value if account is not None else None,
            family=IPv4 if question.rrtype == RRType.A else IPv6,
            hostname=hostname,
            client_subnet=context.client_subnet,
        )
        if self.tracer is None:
            decision = self.engine.evaluate(attrs)
            if decision is None:
                return self._fall_through(question, context)
            return self._policy_answer(question, decision)

        trace = self.tracer.next_trace_id("query")
        with self.tracer.span(trace, "query", hostname):
            with self.tracer.span(trace, "policy_match"):
                decision = self.engine.evaluate(attrs)
            if decision is None:
                return self._fall_through(question, context)
            with self.tracer.span(trace, "mint", decision.policy.name):
                return self._policy_answer(question, decision)

    def answer_batch(
        self, questions: Sequence[Question], context: QueryContext
    ) -> list[Answer]:
        """Batched :meth:`answer`: one policy-engine batch call, log
        counters folded once.

        A traced source stays on the per-question path — spans are a
        per-query artefact, and batching them would change the recorded
        topology (this is a documented batch-of-one delegation exception;
        see DESIGN.md §12).  The untraced hot path evaluates every
        policy-eligible question through one
        :meth:`~repro.core.policy.PolicyEngine.evaluate_batch` call; the
        RNG draw order matches the scalar loop because fallback answers
        never touch the engine RNG.
        """
        if self.tracer is not None:
            answer = self.answer
            return [answer(question, context) for question in questions]

        registry = self.registry
        pop = context.pop
        client_subnet = context.client_subnet
        attrs_list: list[PolicyAttributes] = []
        eligible: list[int] = []
        for i, question in enumerate(questions):
            if question.rrtype not in (RRType.A, RRType.AAAA):
                continue
            hostname = str(question.name).rstrip(".")
            account = registry.account_type_for(hostname)
            attrs_list.append(
                PolicyAttributes(
                    pop=pop,
                    account_type=account.value if account is not None else None,
                    family=IPv4 if question.rrtype == RRType.A else IPv6,
                    hostname=hostname,
                    client_subnet=client_subnet,
                )
            )
            eligible.append(i)

        decisions: dict[int, PolicyDecision | None] = dict(
            zip(eligible, self.engine.evaluate_batch(attrs_list))
        )
        fallback = self.fallback
        policy_answers = fallback_answers = refused = 0
        by_policy: Counter[str] = Counter()
        answers: list[Answer] = []
        append = answers.append
        try:
            for i, question in enumerate(questions):
                decision = decisions.get(i)
                if decision is not None:
                    rdata = (
                        A(decision.address)
                        if question.rrtype == RRType.A
                        else AAAA(decision.address)
                    )
                    record = ResourceRecord(question.name, rdata, ttl=decision.ttl)
                    policy_answers += 1
                    by_policy[decision.policy.name] += 1
                    append(Answer(Rcode.NOERROR, records=(record,)))
                elif fallback is None:
                    refused += 1
                    append(Answer(Rcode.REFUSED))
                else:
                    fallback_answers += 1
                    append(fallback.answer(question, context))
        finally:
            log = self.log
            log.policy_answers += policy_answers
            log.fallback_answers += fallback_answers
            log.refused += refused
            for name, n in by_policy.items():
                log.by_policy[name] = log.by_policy.get(name, 0) + n
        return answers

    # -- internals -------------------------------------------------------------

    def _policy_answer(self, question: Question, decision: PolicyDecision) -> Answer:
        rdata = A(decision.address) if question.rrtype == RRType.A else AAAA(decision.address)
        record = ResourceRecord(question.name, rdata, ttl=decision.ttl)
        self.log.record_policy(decision.policy.name)
        return Answer(Rcode.NOERROR, records=(record,))

    def _fall_through(self, question: Question, context: QueryContext) -> Answer:
        if self.fallback is None:
            self.log.refused += 1
            return Answer(Rcode.REFUSED)
        self.log.fallback_answers += 1
        return self.fallback.answer(question, context)
