"""The agility controller: runtime address-scheduling operations.

§3.4's operational outcome — "large changes in address usage need take
only as long as necessary for stakeholders to agree, and minutes or
seconds more to execute" — is realised here as small, logged, reversible
control-plane operations on live policies:

* shrink/move a policy's active address set (the §4.2 timetable:
  /20 → /24 → /32);
* swap a policy's pool to a different prefix (leak/DoS mitigation — "keep
  the policy, but change the prefix", §6);
* swap a policy's selection strategy (e.g. random → per-PoP for leak
  detection);
* change a policy's TTL (step 1 of the DoS k-ary search).

Every operation records what changed and when (simulated clock), and
reports the *propagation horizon*: the instant by which all downstream
caches must have picked the change up (now + previous TTL) — the paper's
"changes will be immediate for new queries, and cached records will update
in a time that is upper-bounded by TTL" (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import Clock
from ..netsim.addr import IPAddress, Prefix
from .policy import PolicyEngine
from .pool import AddressPool
from .strategies import SelectionStrategy

__all__ = ["AgilityOperation", "AgilityController"]


@dataclass(frozen=True, slots=True)
class AgilityOperation:
    """An entry in the controller's change log."""

    at: float
    policy: str
    kind: str
    detail: str
    propagation_horizon: float


class AgilityController:
    """Schedules addresses against live policies."""

    def __init__(self, engine: PolicyEngine, clock: Clock) -> None:
        self.engine = engine
        self.clock = clock
        self.log: list[AgilityOperation] = []

    # -- operations ---------------------------------------------------------

    def set_active(self, policy_name: str, active: "Prefix | list[IPAddress]") -> AgilityOperation:
        """Re-scope the in-use portion of a policy's pool (§4.2 timetable)."""
        policy = self.engine.get(policy_name)
        horizon = self._horizon(policy.ttl)
        policy.pool.set_active(active if isinstance(active, Prefix) else tuple(active))
        return self._record(policy_name, "set_active", str(active), horizon)

    def swap_pool(self, policy_name: str, new_pool: AddressPool) -> AgilityOperation:
        """Move a policy to a different pool — the §6 mitigation move.

        "Keep the policy, but change the prefix."  Takes effect for every
        subsequent query; caches age out within the old TTL.
        """
        policy = self.engine.get(policy_name)
        horizon = self._horizon(policy.ttl)
        if new_pool.family != policy.pool.family:
            raise ValueError("replacement pool family differs from policy pool")
        policy.pool = new_pool
        return self._record(policy_name, "swap_pool", new_pool.name, horizon)

    def set_strategy(self, policy_name: str, strategy: SelectionStrategy) -> AgilityOperation:
        policy = self.engine.get(policy_name)
        horizon = self._horizon(policy.ttl)
        policy.strategy = strategy
        return self._record(
            policy_name, "set_strategy", type(strategy).__name__, horizon
        )

    def set_ttl(self, policy_name: str, ttl: int) -> AgilityOperation:
        """Change answer TTL.  Lowering TTL *before* an agile manoeuvre
        shortens every later manoeuvre's horizon (DoS search step 1)."""
        if ttl < 0:
            raise ValueError("TTL must be non-negative")
        policy = self.engine.get(policy_name)
        horizon = self._horizon(policy.ttl)  # old TTL governs the transition
        policy.ttl = ttl
        return self._record(policy_name, "set_ttl", str(ttl), horizon)

    # -- bookkeeping ------------------------------------------------------------

    def _horizon(self, previous_ttl: int) -> float:
        return self.clock.now() + previous_ttl

    def _record(self, policy: str, kind: str, detail: str, horizon: float) -> AgilityOperation:
        op = AgilityOperation(
            at=self.clock.now(),
            policy=policy,
            kind=kind,
            detail=detail,
            propagation_horizon=horizon,
        )
        self.log.append(op)
        return op

    def operations(self) -> list[AgilityOperation]:
        return list(self.log)
