"""``repro.serve`` — the real-socket authoritative DNS frontend.

Everything below :mod:`repro.dns` in this repository exchanges bytes
through function calls; this package is where those same bytes meet real
UDP datagrams and TCP streams.  Layers, bottom up:

* :mod:`~repro.serve.protocol` — socketless protocol core: datagram
  handling and RFC 1035 §4.2.2 stream framing over an
  :class:`~repro.dns.server.AuthoritativeServer`;
* :mod:`~repro.serve.workers` — pre-fork ``SO_REUSEPORT`` worker pool
  with graceful drain and sk_lookup-style re-pointing;
* :mod:`~repro.serve.counters` — lock-free shared-memory stats rows;
* :mod:`~repro.serve.client` — loopback stub client with EDNS and
  TC→TCP fallback, used by benchmarks and smoke tests;
* :mod:`~repro.serve.app` — the demo world plus one-shot/smoke drivers
  behind ``python -m repro serve``.
"""

from .app import build_pool, build_server, run_oneshot, run_smoke
from .client import ClientStats, LoopbackClient, QueryOutcome
from .counters import ServeCounters
from .protocol import ProtocolCore, StreamSession
from .workers import DEFAULT_BIND, WorkerPool, parse_bind

__all__ = [
    "build_pool",
    "build_server",
    "run_oneshot",
    "run_smoke",
    "ClientStats",
    "LoopbackClient",
    "QueryOutcome",
    "ServeCounters",
    "ProtocolCore",
    "StreamSession",
    "DEFAULT_BIND",
    "WorkerPool",
    "parse_bind",
]
