"""In-process loopback DNS client for the real-socket frontend.

The test-side counterpart of :mod:`repro.serve.workers`: a minimal stub
resolver that speaks actual UDP and TCP to a local server, implementing
just the client behaviours our serving path must trigger — EDNS buffer
advertisement, retry on timeout, and the RFC 7766 fall-back to TCP when
an answer comes back TC-flagged.  The benchmark and smoke jobs drive the
pool exclusively through this class, so its counters are the client-side
half of every assertion ("one truncation, one TCP completion, zero
drops").
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass, field

from ..dns.edns import OptRecord, attach_opt
from ..dns.records import DomainName, RRType
from ..dns.wire import Message, WireError

__all__ = ["LoopbackClient", "ClientStats", "QueryOutcome"]

_RECV_SIZE = 65535


@dataclass(slots=True)
class ClientStats:
    udp_queries: int = 0
    tcp_fallbacks: int = 0
    timeouts: int = 0
    mismatched: int = 0  # responses discarded (wrong ID / not QR)
    by_rcode: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class QueryOutcome:
    """One resolution: the final message and how it was obtained."""

    message: Message
    transport: str            # "udp" or "tcp"
    truncated_first: bool     # the UDP answer carried TC


class LoopbackClient:
    """Blocking wire client against one ``(host, port)`` server.

    ``payload_size`` is the EDNS buffer size advertised on every query
    (RFC 6891); ``None`` sends EDNS-less queries, capping answers at the
    classic 512 bytes — the easiest way to force the truncation path.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout_s: float = 2.0,
        retries: int = 2,
        payload_size: int | None = 1232,
        rng: random.Random | None = None,
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.retries = retries
        self.payload_size = payload_size
        self.stats = ClientStats()
        self._rng = rng or random.Random(0xD16)

    # -- public API ----------------------------------------------------------

    def query(self, name: str | DomainName, rrtype: RRType = RRType.A) -> QueryOutcome:
        """Resolve over UDP, completing over TCP if the answer is truncated.

        Raises :class:`TimeoutError` when every retry is exhausted and
        :class:`~repro.dns.wire.WireError` never escapes a worker — but
        may escape *here*, because a malformed answer from the server
        under test is exactly what the caller wants to hear about.
        """
        if isinstance(name, str):
            name = DomainName.from_text(name)
        qid = self._rng.getrandbits(16)
        wire = self._encode_query(qid, name, rrtype)

        response = self._udp_roundtrip(wire, qid)
        if not response.flags.tc:
            self._count_rcode(response)
            return QueryOutcome(response, transport="udp", truncated_first=False)

        self.stats.tcp_fallbacks += 1
        response = self.query_tcp_wire(wire, qid)
        self._count_rcode(response)
        return QueryOutcome(response, transport="tcp", truncated_first=True)

    def query_tcp(self, name: str | DomainName, rrtype: RRType = RRType.A) -> QueryOutcome:
        """Resolve over TCP directly (what ``dig +tcp`` does)."""
        if isinstance(name, str):
            name = DomainName.from_text(name)
        qid = self._rng.getrandbits(16)
        response = self.query_tcp_wire(self._encode_query(qid, name, rrtype), qid)
        self._count_rcode(response)
        return QueryOutcome(response, transport="tcp", truncated_first=False)

    # -- transports ----------------------------------------------------------

    def _udp_roundtrip(self, wire: bytes, qid: int) -> Message:
        attempts = self.retries + 1
        for _ in range(attempts):
            with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
                sock.settimeout(self.timeout_s)
                sock.sendto(wire, self.address)
                self.stats.udp_queries += 1
                try:
                    while True:
                        data, _peer = sock.recvfrom(_RECV_SIZE)
                        response = self._accept(data, qid)
                        if response is not None:
                            return response
                        self.stats.mismatched += 1
                except socket.timeout:
                    self.stats.timeouts += 1
        raise TimeoutError(
            f"no answer from {self.address} after {attempts} UDP attempts"
        )

    def query_tcp_wire(self, wire: bytes, qid: int) -> Message:
        """One framed TCP exchange (RFC 1035 §4.2.2)."""
        with socket.create_connection(self.address, timeout=self.timeout_s) as sock:
            sock.sendall(len(wire).to_bytes(2, "big") + wire)
            frame = self._read_exact(sock, 2)
            length = int.from_bytes(frame, "big")
            data = self._read_exact(sock, length)
        response = self._accept(data, qid)
        if response is None:
            self.stats.mismatched += 1
            raise WireError(f"TCP answer from {self.address} does not match query {qid}")
        return response

    # -- internals -------------------------------------------------------------

    def _encode_query(self, qid: int, name: DomainName, rrtype: RRType) -> bytes:
        query = Message.query(qid, name, rrtype)
        if self.payload_size is not None:
            query = attach_opt(query, OptRecord(udp_payload_size=self.payload_size))
        return query.encode()

    def _accept(self, data: bytes, qid: int) -> Message | None:
        try:
            response = Message.decode(data)
        except WireError:
            return None
        if response.id != qid or not response.flags.qr:
            return None
        return response

    def _count_rcode(self, response: Message) -> None:
        rcode = int(response.flags.rcode)
        self.stats.by_rcode[rcode] = self.stats.by_rcode.get(rcode, 0) + 1

    @staticmethod
    def _read_exact(sock: socket.socket, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            chunk = sock.recv(n - len(out))
            if not chunk:
                raise ConnectionError("server closed mid-frame")
            out += chunk
        return bytes(out)
