"""Lock-free shared counters between serve workers and their parent.

Worker processes are forked, so ordinary Python counters in the child are
invisible to the parent that exports metrics.  The classic fix (gunicorn's
statsd hooks, NSD's per-child stats blocks) is a shared-memory region with
one row per worker: each worker writes only its own row (single writer —
no lock needed), the parent sums rows at read time.

The row layout is ``COUNTER_FIELDS`` followed by a fixed-bucket latency
histogram in microseconds (bucket counts, then sum and count).  Fixed
buckets keep the export mergeable across workers and deterministic in
shape, matching :class:`~repro.obs.metrics.Histogram`.
"""

from __future__ import annotations

import multiprocessing

__all__ = [
    "COUNTER_FIELDS",
    "LATENCY_BUCKETS_US",
    "ServeCounters",
    "WorkerCounters",
]

COUNTER_FIELDS = (
    "queries",        # datagrams + framed messages received
    "responses",      # responses actually written back
    "truncated",      # UDP responses that went out TC-flagged
    "malformed",      # inputs dropped (undecodable datagram / bad frame)
    "tcp_sessions",   # stream sessions accepted
    "drained",        # set to 1 when the worker finished a graceful drain
)

#: Latency bucket upper bounds in microseconds (+Inf bucket is implicit).
LATENCY_BUCKETS_US = (50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000)

_N_FIELDS = len(COUNTER_FIELDS)
_N_BUCKETS = len(LATENCY_BUCKETS_US) + 1  # +Inf
#: int64 slots per worker row: counters, buckets, latency sum, latency count.
ROW_SLOTS = _N_FIELDS + _N_BUCKETS + 2


class WorkerCounters:
    """One worker's window onto its own row.  Single writer by contract."""

    __slots__ = ("_array", "_base")

    def __init__(self, array, base: int) -> None:
        self._array = array
        self._base = base

    def inc(self, field: str, amount: int = 1) -> None:
        self._array[self._base + COUNTER_FIELDS.index(field)] += amount

    def observe_us(self, micros: int) -> None:
        """Record one request latency, in whole microseconds."""
        slot = _N_BUCKETS - 1
        for i, bound in enumerate(LATENCY_BUCKETS_US):
            if micros <= bound:
                slot = i
                break
        base = self._base + _N_FIELDS
        self._array[base + slot] += 1
        self._array[base + _N_BUCKETS] += micros
        self._array[base + _N_BUCKETS + 1] += 1


class ServeCounters:
    """The shared block: parent-side aggregation over per-worker rows."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("need at least one worker row")
        self.workers = workers
        # lock=False: every slot has exactly one writer (its worker); the
        # parent only reads, and int64 reads are atomic on every platform
        # CPython runs multiprocessing on.
        self._array = multiprocessing.Array("q", workers * ROW_SLOTS, lock=False)

    def row(self, index: int) -> WorkerCounters:
        if not 0 <= index < self.workers:
            raise IndexError(f"worker index {index} out of range")
        return WorkerCounters(self._array, index * ROW_SLOTS)

    def worker_snapshot(self, index: int) -> dict[str, int]:
        """One worker's row as a flat metric dict."""
        base = index * ROW_SLOTS
        out: dict[str, int] = {}
        for i, name in enumerate(COUNTER_FIELDS):
            out[name] = int(self._array[base + i])
        hbase = base + _N_FIELDS
        for i, bound in enumerate(LATENCY_BUCKETS_US):
            out[f"latency_bucket_le_{bound}us"] = int(self._array[hbase + i])
        out["latency_bucket_le_inf"] = int(self._array[hbase + _N_BUCKETS - 1])
        out["latency_sum_us"] = int(self._array[hbase + _N_BUCKETS])
        out["latency_count"] = int(self._array[hbase + _N_BUCKETS + 1])
        return out

    def snapshot(self) -> dict[str, int]:
        """All rows summed — the pool-wide totals."""
        total: dict[str, int] = {}
        for index in range(self.workers):
            for name, value in self.worker_snapshot(index).items():
                total[name] = total.get(name, 0) + value
        return total
