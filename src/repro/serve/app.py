"""The default serving world and the one-shot / smoke drivers.

``build_server(seed)`` assembles the same stack every simulation PR has
been exercising — :class:`~repro.core.authoritative.PolicyAnswerSource`
minting agile addresses over a pool, with a conventional zone fallback —
and :func:`run_oneshot` binds it to real sockets and proves the two wire
behaviours the frontend exists to demonstrate:

* a plain A query answered over UDP with a policy-minted address;
* an oversize TXT answer truncated on UDP (TC set) and completed over
  TCP, full record set intact.

The zone deliberately contains an RRset too large for any sane UDP
budget (``big.example.com`` TXT, ~1.6 kB) and a CNAME into the policy
hostname, so one world covers the truncation, stream, and chain paths.
"""

from __future__ import annotations

import random

from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.records import A, CNAME, DomainName, ResourceRecord, RRType, TXT
from ..dns.server import AuthoritativeServer, ZoneAnswerSource
from ..dns.wire import Rcode
from ..dns.zone import Zone
from ..edge.customers import AccountType, Customer, CustomerRegistry
from ..netsim.addr import parse_prefix
from .client import LoopbackClient
from .workers import DEFAULT_BIND, WorkerPool

__all__ = [
    "AGILE_PREFIX",
    "AGILE_HOSTNAME",
    "BIG_HOSTNAME",
    "ALIAS_HOSTNAME",
    "BIG_TXT_RECORDS",
    "DEFAULT_SEED",
    "build_server",
    "build_pool",
    "run_oneshot",
    "run_smoke",
]

AGILE_PREFIX = parse_prefix("192.0.2.0/24")
AGILE_HOSTNAME = "www.example.com"
BIG_HOSTNAME = "big.example.com"
ALIAS_HOSTNAME = "alias.example.com"
#: Enough ~60-byte TXT records to exceed even a 1232-byte EDNS budget.
BIG_TXT_RECORDS = 28
DEFAULT_SEED = 0x5E12E


def build_server(seed: int = DEFAULT_SEED) -> AuthoritativeServer:
    """The demo authoritative: policy-minted A records + zone fallback.

    Runs inside each forked worker (each gets its own seed), so it must
    build everything from scratch — no references into the parent.
    """
    customers = CustomerRegistry()
    customers.add(Customer("demo", AccountType.FREE, {AGILE_HOSTNAME}))
    engine = PolicyEngine(random.Random(seed))
    engine.add(
        Policy(
            "agile",
            AddressPool(AGILE_PREFIX, name="agile-pool"),
            match={"account_type": {AccountType.FREE.value}},
            ttl=30,
        )
    )

    zone = Zone("example.com")
    big = DomainName.from_text(BIG_HOSTNAME)
    for i in range(BIG_TXT_RECORDS):
        zone.add_record(
            ResourceRecord(big, TXT((f"filler-{i:02d}-" + "x" * 46,)), 300)
        )
    zone.add_record(
        ResourceRecord(
            DomainName.from_text(ALIAS_HOSTNAME),
            CNAME(DomainName.from_text(AGILE_HOSTNAME)),
            300,
        )
    )
    # Static fallback address for the agile hostname: what a non-A path
    # (the in-zone CNAME chase) resolves to when the policy engine is not
    # consulted for the tail.
    zone.add_record(
        ResourceRecord(
            DomainName.from_text(AGILE_HOSTNAME),
            A(AGILE_PREFIX.address_at(80)),
            300,
        )
    )
    source = PolicyAnswerSource(engine, customers, fallback=ZoneAnswerSource([zone]))
    return AuthoritativeServer(source, name="serve-auth")


def build_pool(
    bind: str = DEFAULT_BIND,
    workers: int = 1,
    seed: int = DEFAULT_SEED,
    drain_s: float = 2.0,
) -> WorkerPool:
    return WorkerPool(
        build_server, bind=bind, workers=workers, seed=seed, pop="serve", drain_s=drain_s
    )


def run_oneshot(
    bind: str = DEFAULT_BIND,
    workers: int = 1,
    seed: int = DEFAULT_SEED,
    timeout_s: float = 3.0,
) -> dict:
    """Start a pool, prove both wire paths, stop the pool; returns a report.

    The report's ``ok`` key is the overall verdict; everything else is
    evidence (dig-style answer summaries, pool counters).
    """
    with build_pool(bind=bind, workers=workers, seed=seed) as pool:
        client = LoopbackClient(pool.address, timeout_s=timeout_s)

        plain = client.query(AGILE_HOSTNAME)
        addresses = [
            str(r.rdata.address)
            for r in plain.message.answers
            if r.rrtype == RRType.A
        ]
        plain_ok = (
            plain.transport == "udp"
            and not plain.truncated_first
            and plain.message.flags.rcode == Rcode.NOERROR
            and bool(addresses)
            and all(a in AGILE_PREFIX for a in (
                r.rdata.address for r in plain.message.answers if r.rrtype == RRType.A
            ))
        )

        big = client.query(BIG_HOSTNAME, RRType.TXT)
        big_ok = (
            big.truncated_first
            and big.transport == "tcp"
            and big.message.flags.rcode == Rcode.NOERROR
            and len(big.message.answers) == BIG_TXT_RECORDS
        )

        address = pool.address

    counters = pool.snapshot()  # after stop: includes the drain markers
    return {
        "ok": plain_ok and big_ok,
        "address": f"{address[0]}:{address[1]}",
        "workers": workers,
        "plain": {
            "question": f"{AGILE_HOSTNAME} IN A",
            "transport": plain.transport,
            "rcode": int(plain.message.flags.rcode),
            "addresses": addresses,
            "ok": plain_ok,
        },
        "truncated": {
            "question": f"{BIG_HOSTNAME} IN TXT",
            "transport": big.transport,
            "tc_on_udp": big.truncated_first,
            "answers": len(big.message.answers),
            "expected_answers": BIG_TXT_RECORDS,
            "ok": big_ok,
        },
        "counters": counters,
        "client": {
            "udp_queries": client.stats.udp_queries,
            "tcp_fallbacks": client.stats.tcp_fallbacks,
            "timeouts": client.stats.timeouts,
        },
    }


def run_smoke(
    queries: int = 50,
    workers: int = 2,
    bind: str = DEFAULT_BIND,
    seed: int = DEFAULT_SEED,
    timeout_s: float = 3.0,
) -> dict:
    """CI smoke: N plain queries plus one forced truncation, zero drops.

    Every query must be answered (no timeouts), the one oversize answer
    must complete over TCP, and the pool must report zero malformed
    inputs — the wire path never silently eats a well-formed query.
    """
    if queries < 1:
        raise ValueError("need at least one query")
    with build_pool(bind=bind, workers=workers, seed=seed) as pool:
        client = LoopbackClient(pool.address, timeout_s=timeout_s)
        rcodes_ok = True
        for _ in range(queries - 1):
            outcome = client.query(AGILE_HOSTNAME)
            rcodes_ok = rcodes_ok and outcome.message.flags.rcode == Rcode.NOERROR
        forced = client.query(BIG_HOSTNAME, RRType.TXT)

    counters = pool.snapshot()  # after stop: includes the drain markers
    ok = (
        rcodes_ok
        and client.stats.timeouts == 0
        and forced.transport == "tcp"
        and forced.truncated_first
        and len(forced.message.answers) == BIG_TXT_RECORDS
        and counters.get("malformed", 0) == 0
        and counters.get("truncated", 0) >= 1
        and counters.get("drained", 0) == workers
    )
    return {
        "ok": ok,
        "queries_sent": queries,
        "workers": workers,
        "counters": counters,
        "client_timeouts": client.stats.timeouts,
        "forced_tc_completed": forced.transport == "tcp",
    }
