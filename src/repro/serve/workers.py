"""Pre-fork worker pool behind shared SO_REUSEPORT sockets.

This is the process model the deployment section of the paper leans on
without spelling out: N single-threaded workers all bound to the same
address via ``SO_REUSEPORT``, the kernel spraying queries across them —
gunicorn's arbiter/worker split applied to DNS.  It also gives us a
faithful userspace stand-in for the paper's sk_lookup trick (§5): the
socket a query lands on is *looked up at delivery time*, so re-pointing
the service onto a fresh set of workers (:meth:`WorkerPool.repoint`) is
just adding sockets to the reuseport group and draining the old ones —
in-flight queries complete on the socket they arrived at, and nothing
ever observes a closed port.

Graceful drain on SIGTERM mirrors the same discipline: stop accepting,
finish what is queued, then exit — the parent never hard-kills a worker
that is still mid-response unless the drain deadline passes.

This module touches real sockets, real processes, and the real clock by
design; the determinism pragmas below each mark one such deliberate exit
from simulated time.
"""

from __future__ import annotations

import multiprocessing
import selectors
import signal
import socket
import time

from .counters import ServeCounters, WorkerCounters
from .protocol import ProtocolCore, StreamSession

__all__ = ["WorkerPool", "parse_bind", "DEFAULT_BIND"]

DEFAULT_BIND = "127.0.0.1:0"

#: How many datagrams one readable event may drain before yielding back to
#: the selector — keeps one chatty peer from starving TCP sessions.
_UDP_BATCH = 64

_RECV_SIZE = 65535

#: Flags byte 2 of a DNS header: the TC bit (RFC 1035 §4.1.1).
_TC_BIT = 0x02


def parse_bind(spec: str) -> tuple[str, int]:
    """Parse a gunicorn-style ``HOST:PORT`` bind spec.

    ``:PORT`` binds loopback (this frontend is a reproduction harness, not
    an internet-facing daemon — never default to wildcard).  Port ``0``
    asks the kernel for a free port, which :class:`WorkerPool` then shares
    across every worker socket.
    """
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        raise ValueError(f"bind spec {spec!r} is not HOST:PORT")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bind spec {spec!r}: port {port_text!r} is not an integer") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bind spec {spec!r}: port {port} out of range")
    return host, port


def _reuseport_udp(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.setblocking(False)
    return sock

def _reuseport_tcp(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(128)
    sock.setblocking(False)
    return sock


def _bind_worker_sockets(
    host: str, port: int, workers: int
) -> tuple[list[tuple[socket.socket, socket.socket]], int]:
    """One (UDP, TCP) reuseport pair per worker, all on the same port.

    With ``port == 0`` the kernel picks the UDP port first; the TCP bind to
    that same number can collide with an unrelated listener, so retry the
    whole pair until a port works for both protocols.
    """
    first_udp: socket.socket | None = None
    first_tcp: socket.socket | None = None
    actual = port
    for _ in range(32):
        first_udp = _reuseport_udp(host, port)
        actual = first_udp.getsockname()[1]
        try:
            first_tcp = _reuseport_tcp(host, actual)
        except OSError:
            first_udp.close()
            first_udp = None
            if port != 0:
                raise
            continue
        break
    if first_udp is None or first_tcp is None:
        raise OSError(f"could not find a port usable for both UDP and TCP on {host}")
    pairs = [(first_udp, first_tcp)]
    try:
        for _ in range(workers - 1):
            udp = _reuseport_udp(host, actual)
            pairs.append((udp, _reuseport_tcp(host, actual)))
    except OSError:
        for udp, tcp in pairs:
            udp.close()
            tcp.close()
        raise
    return pairs, actual


# -- the worker process ---------------------------------------------------------


def _worker_main(
    index: int,
    udp_sock: socket.socket,
    tcp_sock: socket.socket,
    builder,
    seed: int,
    counters: WorkerCounters,
    pop: str,
    drain_s: float,
) -> None:
    """One worker: build the world, serve both sockets until told to drain.

    The answer world is built *after* the fork from ``builder(seed+index)``
    — each worker owns its state (no shared interpreter objects), and the
    per-worker seed keeps every worker's policy RNG stream independent yet
    reproducible.
    """
    stopping = False

    def _on_sigterm(signum, frame):
        nonlocal stopping
        stopping = True

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # ^C belongs to the parent

    core = ProtocolCore(builder(seed + index), pop=pop)
    selector = selectors.DefaultSelector()
    selector.register(udp_sock, selectors.EVENT_READ, "udp")
    selector.register(tcp_sock, selectors.EVENT_READ, "accept")
    sessions: dict[socket.socket, StreamSession] = {}

    def _serve_udp() -> None:
        for _ in range(_UDP_BATCH):
            try:
                data, peer = udp_sock.recvfrom(_RECV_SIZE)
            except BlockingIOError:
                return
            except OSError:
                return
            counters.inc("queries")
            started = time.perf_counter()  # repro: allow-wall-clock real-socket latency histogram
            response = core.datagram(data)
            elapsed = time.perf_counter() - started  # repro: allow-wall-clock real-socket latency histogram
            if response is None:
                counters.inc("malformed")
                continue
            if response[2] & _TC_BIT:
                counters.inc("truncated")
            try:
                udp_sock.sendto(response, peer)
            except OSError:
                continue
            counters.inc("responses")
            counters.observe_us(int(elapsed * 1e6))

    def _close_session(conn: socket.socket) -> None:
        try:
            selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        sessions.pop(conn, None)
        try:
            conn.close()
        except OSError:
            pass

    def _serve_accept() -> None:
        while True:
            try:
                conn, _peer = tcp_sock.accept()
            except (BlockingIOError, OSError):
                return
            conn.setblocking(False)
            sessions[conn] = StreamSession(core)
            selector.register(conn, selectors.EVENT_READ, "session")
            counters.inc("tcp_sessions")

    def _serve_session(conn: socket.socket) -> None:
        session = sessions.get(conn)
        if session is None:
            return
        try:
            chunk = conn.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            _close_session(conn)
            return
        if not chunk:
            _close_session(conn)
            return
        counters.inc("queries")
        started = time.perf_counter()  # repro: allow-wall-clock real-socket latency histogram
        out = session.feed(chunk)
        elapsed = time.perf_counter() - started  # repro: allow-wall-clock real-socket latency histogram
        if out:
            try:
                conn.sendall(out)
            except OSError:
                _close_session(conn)
                return
            counters.inc("responses")
            counters.observe_us(int(elapsed * 1e6))
        if session.closed:
            counters.inc("malformed")
            _close_session(conn)

    handlers = {"udp": _serve_udp, "accept": _serve_accept}
    while not stopping:
        try:
            events = selector.select(timeout=0.1)
        except OSError:
            continue
        for key, _mask in events:
            if key.data == "session":
                _serve_session(key.fileobj)
            else:
                handlers[key.data]()

    # -- graceful drain: stop accepting, finish what is in flight --------------
    try:
        selector.unregister(tcp_sock)
    except (KeyError, ValueError):
        pass
    tcp_sock.close()
    deadline = time.monotonic() + drain_s  # repro: allow-wall-clock drain deadline is real elapsed time
    while time.monotonic() < deadline:  # repro: allow-wall-clock drain deadline is real elapsed time
        _serve_udp()  # whatever the kernel already queued for this socket
        if not sessions:
            break
        try:
            events = selector.select(timeout=0.05)
        except OSError:
            break
        for key, _mask in events:
            if key.data == "session":
                _serve_session(key.fileobj)
    for conn in list(sessions):
        _close_session(conn)
    udp_sock.close()
    selector.close()
    counters.inc("drained")


# -- the parent-side pool -------------------------------------------------------


class WorkerPool:
    """Arbiter for one generation (or more, mid-repoint) of serve workers.

    ``builder(seed)`` must return a fresh
    :class:`~repro.dns.server.AuthoritativeServer`; it runs inside each
    forked worker.  The pool binds every socket *before* forking so a
    ``:0`` bind resolves to one concrete shared port, then hands each
    worker its own reuseport pair.
    """

    def __init__(
        self,
        builder,
        bind: str = DEFAULT_BIND,
        workers: int = 1,
        seed: int = 0,
        pop: str = "edge",
        drain_s: float = 2.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.builder = builder
        self.host, self._requested_port = parse_bind(bind)
        self.workers = workers
        self.seed = seed
        self.pop = pop
        self.drain_s = drain_s
        self.port: int | None = None
        self._ctx = multiprocessing.get_context("fork")
        self._generations: list[dict] = []
        self._retired: dict[str, int] = {}
        self._generation_counter = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._generations:
            raise RuntimeError("pool already started")
        self._spawn_generation(self.builder, self.seed)
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise RuntimeError("pool not started")
        return (self.host, self.port)

    def _spawn_generation(self, builder, seed: int) -> None:
        port = self.port if self.port is not None else self._requested_port
        pairs, actual = _bind_worker_sockets(self.host, port, self.workers)
        self.port = actual
        counters = ServeCounters(self.workers)
        self._generation_counter += 1
        generation = self._generation_counter
        procs = []
        for index, (udp, tcp) in enumerate(pairs):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(index, udp, tcp, builder, seed, counters.row(index),
                      self.pop, self.drain_s),
                name=f"serve-g{generation}-w{index}",
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        # The children hold the only references that matter now; keeping
        # parent-side copies open would hold the reuseport group hostage
        # after the workers exit.
        for udp, tcp in pairs:
            udp.close()
            tcp.close()
        self._generations.append(
            {"id": generation, "procs": procs, "counters": counters, "seed": seed}
        )

    def repoint(self, builder=None, seed: int | None = None) -> int:
        """sk_lookup-style re-point: swap in a fresh worker set, same port.

        The new generation joins the reuseport group before the old one is
        asked to drain, so there is no instant at which the port has no
        listener — queries in flight finish wherever they landed.
        Returns the new generation id.
        """
        if not self._generations:
            raise RuntimeError("pool not started")
        old = self._generations[-1]
        self._spawn_generation(builder or self.builder,
                               self.seed if seed is None else seed)
        self._drain_generation(old)
        return self._generations[-1]["id"]

    def _drain_generation(self, generation: dict) -> None:
        for proc in generation["procs"]:
            if proc.is_alive():
                proc.terminate()  # SIGTERM: workers drain, then exit
        deadline = time.monotonic() + self.drain_s + 3.0  # repro: allow-wall-clock process join deadline
        for proc in generation["procs"]:
            remaining = max(0.1, deadline - time.monotonic())  # repro: allow-wall-clock process join deadline
            proc.join(timeout=remaining)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        self._fold(generation["counters"])
        self._generations.remove(generation)

    def stop(self) -> None:
        """Gracefully drain every live generation."""
        for generation in list(self._generations):
            self._drain_generation(generation)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- metrics -------------------------------------------------------------

    def _fold(self, counters: ServeCounters) -> None:
        for name, value in counters.snapshot().items():
            self._retired[name] = self._retired.get(name, 0) + value

    def snapshot(self) -> dict[str, int]:
        """Pool-wide totals: retired generations plus everything live."""
        total = dict(self._retired)
        for generation in self._generations:
            for name, value in generation["counters"].snapshot().items():
                total[name] = total.get(name, 0) + value
        return total

    def worker_snapshots(self) -> list[dict[str, int]]:
        """Per-worker rows of the *current* generation (empty if stopped)."""
        if not self._generations:
            return []
        counters = self._generations[-1]["counters"]
        return [counters.worker_snapshot(i) for i in range(self.workers)]

    def alive(self) -> int:
        return sum(
            1
            for generation in self._generations
            for proc in generation["procs"]
            if proc.is_alive()
        )
