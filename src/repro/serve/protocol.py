"""Transport-independent protocol core for the real-socket frontend.

The serving stack the paper describes (§3.2) ends at "respond" — which in
production means bytes on a socket, not a :class:`Message` handed back to a
test.  This module is the seam between the two: everything protocol-shaped
(datagram handling, RFC 1035 §4.2.2 two-byte stream framing, pipelining,
malformed-input policy) lives here with **no sockets**, so the exact code
the UDP/TCP workers run is also unit-testable byte-for-byte against the
in-simulation :class:`~repro.dns.server.AuthoritativeServer` — that
equivalence is the differential test the wire frontend ships with.

Malformed-input policy, end to end:

* undecodable datagram → drop (``None``), counted by the server;
* well-formed-but-unsupported query → FORMERR/NOTIMP/REFUSED *response*;
* unframeable TCP bytes (zero-length frame, oversize frame) → close the
  session (RFC 7766 §6.2.4 behaviour for a peer speaking garbage).

Nothing in this module may raise on attacker-controlled bytes; the worker
loop above it relies on that.
"""

from __future__ import annotations

from ..dns.server import AuthoritativeServer, QueryContext
from ..netsim.addr import IPAddress

__all__ = ["ProtocolCore", "StreamSession", "MAX_FRAME"]

#: RFC 1035 §4.2.2: a TCP frame length is 16 bits.
MAX_FRAME = 65535


class ProtocolCore:
    """Bytes in → bytes out for one authoritative server, both transports.

    The ``pop`` label is what the :class:`~repro.dns.server.QueryContext`
    carries into policy evaluation — for a single-host frontend it names
    the logical PoP this process stands in for.
    """

    def __init__(self, server: AuthoritativeServer, pop: str = "edge") -> None:
        self.server = server
        self.pop = pop

    @property
    def stats(self):
        return self.server.stats

    def datagram(self, data: bytes, resolver_address: IPAddress | None = None) -> bytes | None:
        """One UDP datagram; ``None`` means drop (malformed)."""
        context = QueryContext(
            pop=self.pop, resolver_address=resolver_address, transport="udp"
        )
        return self.server.handle_wire(data, context)

    def stream_payload(
        self, data: bytes, resolver_address: IPAddress | None = None
    ) -> bytes | None:
        """One de-framed TCP message; ``None`` means the frame held garbage."""
        context = QueryContext(
            pop=self.pop, resolver_address=resolver_address, transport="tcp"
        )
        return self.server.handle_wire(data, context)


class StreamSession:
    """One DNS-over-TCP session: framing, buffering, pipelining.

    Feed it raw ``recv()`` chunks; it returns response bytes ready for
    ``send()``.  Frames may arrive split at any byte boundary (the length
    prefix itself can straddle two reads) and a single chunk may carry
    several pipelined queries — both are normal TCP behaviour, and both
    are covered by tests because real resolvers (and ``dig +tcp``) do
    them.  After :attr:`closed` goes true the caller must drop the
    connection; further ``feed`` calls return ``b""``.
    """

    __slots__ = ("core", "resolver_address", "closed", "_buffer")

    def __init__(
        self, core: ProtocolCore, resolver_address: IPAddress | None = None
    ) -> None:
        self.core = core
        self.resolver_address = resolver_address
        self.closed = False
        self._buffer = bytearray()

    def feed(self, data: bytes) -> bytes:
        if self.closed:
            return b""
        self._buffer += data
        out = bytearray()
        while len(self._buffer) >= 2:
            length = int.from_bytes(self._buffer[:2], "big")
            if length == 0:
                # A zero-length frame can never hold a DNS header; the
                # peer is not speaking this protocol.  Close rather than
                # resynchronise (there is nothing to resynchronise *to*).
                self.closed = True
                break
            if len(self._buffer) < 2 + length:
                break  # partial frame: wait for more bytes
            payload = bytes(self._buffer[2 : 2 + length])
            del self._buffer[: 2 + length]
            response = self.core.stream_payload(payload, self.resolver_address)
            if response is None:
                # Framing was fine but the message inside was not DNS.
                self.closed = True
                break
            out += len(response).to_bytes(2, "big") + response
        return bytes(out)
