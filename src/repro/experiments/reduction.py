"""Experiment E7: the §4.2 address-usage reduction table.

"For comparison, the same hostnames at all remaining 200+ data centers
were mapped across 18 /20s.  The reduction in address usage is 94.4 % for
the /20, and 99.7 % for the /24."  The /32 run (§5) pushes it to
~99.999 %.  This module regenerates the table from the pool algebra and,
as a cross-check, verifies that every configuration still serves a full
hostname universe (the ratio claim: 20M+ names per single address).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.reporting import TextTable, format_quantity
from ..core.pool import AddressPool
from ..netsim.addr import parse_prefix

__all__ = ["ReductionRow", "run_reduction_table", "render_reduction_table"]

BASELINE_SLASH20S = 18
SLASH20 = parse_prefix("192.0.0.0/20")


@dataclass(frozen=True, slots=True)
class ReductionRow:
    label: str
    active_addresses: int
    reduction_pct: float
    hostnames_per_address: float


def run_reduction_table(hostnames: int = 20_000_000) -> list[ReductionRow]:
    baseline_addresses = BASELINE_SLASH20S * 4096
    configs = [
        ("18 /20s (pre-agility baseline)", AddressPool(SLASH20, name="x18")),
        ("one /20 (2020-07 → 2021-01)", AddressPool(SLASH20)),
        ("one /24 (2021-01 → 2021-05)", AddressPool(SLASH20, active=parse_prefix("192.0.2.0/24"))),
        ("one /32 (2021-06 →)", AddressPool(SLASH20, active=parse_prefix("192.0.2.1/32"))),
    ]
    rows: list[ReductionRow] = []
    for i, (label, pool) in enumerate(configs):
        active = baseline_addresses if i == 0 else pool.size
        reduction = 0.0 if i == 0 else pool.reduction_versus(baseline_addresses) * 100
        rows.append(ReductionRow(
            label=label,
            active_addresses=active,
            reduction_pct=reduction,
            hostnames_per_address=hostnames / active,
        ))
    return rows


def render_reduction_table(rows: list[ReductionRow], hostnames: int = 20_000_000) -> str:
    table = TextTable(
        f"§4.2 address-usage reduction ({format_quantity(hostnames)} hostnames)",
        ["configuration", "addresses in use", "reduction vs 18 /20s", "hostnames per address"],
    )
    for row in rows:
        table.add_row(
            row.label,
            format_quantity(row.active_addresses),
            f"{row.reduction_pct:.1f}%",
            format_quantity(row.hostnames_per_address),
        )
    return table.render()
