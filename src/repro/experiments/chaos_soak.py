"""Experiment E18: chaos soak — randomized fault campaigns vs invariants.

E17 (:mod:`~repro.experiments.failover`) demonstrates recovery from *one*
hand-picked outage; E18 asks the operational question behind §3.4/§6 —
does the detect → rebind → recover loop hold under **arbitrary** fault
schedules, including the gray failures (slow PoPs, lossy ingress,
resolver brownouts, shedding edges) that never trip a binary probe?

A soak generates ``campaigns`` seeded schedules over the whole registered
fault vocabulary, replays each deterministically against the standard
two-region deployment, and evaluates every :mod:`repro.chaos.invariants`
checker.  The headline result is the **zero row**: a correctly tuned
control plane violates nothing across the soak, while per-campaign
columns (availability, tail latency, sheds, detection, recovery) show the
loop absorbing each schedule.  The negative control lives in CI: a pinned
mis-tuned-monitor campaign must violate and must delta-minimize to its
single causal fault.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..analysis.reporting import TextTable
from ..chaos.generator import CampaignGenerator
from ..chaos.runner import CampaignResult, run_campaign
from ..chaos.world import ChaosConfig

__all__ = [
    "ChaosSoakConfig",
    "ChaosSoakOutcome",
    "run_chaos_soak",
    "render_chaos_soak_table",
]


@dataclass(frozen=True, slots=True)
class ChaosSoakConfig:
    seed: int = 7
    campaigns: int = 20
    chaos: ChaosConfig = field(default_factory=ChaosConfig)


@dataclass(frozen=True, slots=True)
class ChaosSoakOutcome:
    config: ChaosSoakConfig
    results: tuple[CampaignResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def violation_count(self) -> int:
        return sum(len(r.violations) for r in self.results)

    def reports(self) -> list[dict]:
        return [r.report() for r in self.results]

    def reports_json(self) -> str:
        """The soak as one deterministic JSON document: same seed, same
        byte stream — CI diffs two invocations to pin determinism."""
        return json.dumps(self.reports(), indent=2)


def run_chaos_soak(config: ChaosSoakConfig | None = None) -> ChaosSoakOutcome:
    config = config or ChaosSoakConfig()
    generator = CampaignGenerator(config.chaos)
    campaigns = generator.generate(config.seed, config.campaigns)
    results = tuple(run_campaign(c, config.chaos) for c in campaigns)
    return ChaosSoakOutcome(config=config, results=results)


def _dash(value: float | None, fmt: str = "{:.0f}") -> str:
    return "—" if value is None else fmt.format(value)


def render_chaos_soak_table(outcome: ChaosSoakOutcome) -> str:
    table = TextTable(
        f"E18 — chaos soak: {len(outcome.results)} seeded campaigns "
        f"(seed {outcome.config.seed}) vs control-plane invariants",
        ["campaign", "faults", "avail", "p99 (ms)", "sheds",
         "detect (s)", "recover (s)", "violations"],
    )
    for result in outcome.results:
        report = result.report()
        kinds = ",".join(spec.kind for spec in result.campaign.faults)
        table.add_row(
            result.campaign.name,
            kinds,
            f"{report['availability']:.4f}",
            f"{report['p99_latency_ms']:.1f}",
            report["sheds"],
            _dash(report["detection_s"]),
            _dash(report["recovery_s"]),
            len(result.violations) or "none",
        )
    verdict = ("all invariants hold" if outcome.ok
               else f"{outcome.violation_count} VIOLATION(S)")
    return f"{table.render()}\n{verdict} across {len(outcome.results)} campaigns"
