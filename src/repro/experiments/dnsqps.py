"""Experiment E13: authoritative answering rate with per-query randomness.

§4.2: the deployment served "~5–6K DNS queries per second (mean)" and "the
scale of the deployment show[s] that random per-query addresses can be
generated at rates of 1000s per second."  The claim under reproduction is
that per-query randomization adds no meaningful cost over conventional
zone serving — the random path must sustain the same order of throughput
as the static path in the same harness.

Builders construct both servers over identical hostname sets; the bench
times wire-level query/response cycles through each.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.records import A, RRType
from ..dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from ..dns.wire import Message, Rcode
from ..dns.zone import Zone
from ..edge.customers import AccountType, Customer, CustomerRegistry
from ..netsim.addr import parse_prefix

__all__ = ["QPSSetup", "build_policy_server", "build_zone_server", "make_queries", "answer_all"]

POOL = parse_prefix("192.0.0.0/20")
CONTEXT = QueryContext(pop="dc1")


@dataclass(slots=True)
class QPSSetup:
    label: str
    server: AuthoritativeServer


def _hostnames(n: int) -> list[str]:
    return [f"site{i:06d}.qps.example" for i in range(n)]


def build_policy_server(num_hostnames: int = 10_000, seed: int = 1) -> QPSSetup:
    """The agile path: policy match + per-query random generation."""
    registry = CustomerRegistry()
    registry.add(Customer("all", AccountType.FREE, set(_hostnames(num_hostnames))))
    engine = PolicyEngine(random.Random(seed))
    engine.add(Policy("qps", AddressPool(POOL), ttl=30))
    return QPSSetup("policy-random", AuthoritativeServer(PolicyAnswerSource(engine, registry)))


def build_zone_server(num_hostnames: int = 10_000, seed: int = 1) -> QPSSetup:
    """The conventional path: static zone lookup (Figure 3a)."""
    zone = Zone("qps.example")
    rng = random.Random(seed)
    for hostname in _hostnames(num_hostnames):
        zone.add_address(hostname, A(POOL.random_address(rng)), ttl=30)
    return QPSSetup("zone-static", AuthoritativeServer(ZoneAnswerSource([zone])))


def make_queries(n: int, num_hostnames: int = 10_000, seed: int = 2) -> list[bytes]:
    rng = random.Random(seed)
    hostnames = _hostnames(num_hostnames)
    return [
        Message.query(i & 0xFFFF, rng.choice(hostnames), RRType.A).encode()
        for i in range(n)
    ]


def answer_all(setup: QPSSetup, queries: list[bytes]) -> int:
    """Serve a batch at the wire level; returns NOERROR count."""
    ok = 0
    handle = setup.server.handle_wire
    for query in queries:
        response = handle(query, CONTEXT)
        if response is not None and Message.decode(response).flags.rcode == Rcode.NOERROR:
            ok += 1
    return ok
