"""Experiment E1–E3 (Figure 7): per-address load under three bindings.

The paper draws Figure 7 from 1 %-sampled production requests at a
medium-popularity facility serving 20M+ hostnames:

* (a) static bindings over two /20s → per-IP load spans ~4–6 orders of
  magnitude;
* (b) per-query random over one /20  → spread shrinks to ≲2–3 orders;
* (c) per-query random over one /24  → near-uniform, max/min factor < 2.

Our runs push a Zipf request stream through the *real* authoritative
serving path (wire-format queries into an
:class:`~repro.dns.server.AuthoritativeServer` backed by the policy
engine), and account per-returned-address request and byte load into a
:class:`~repro.edge.datacenter.TrafficLog` — the same counters the full
CDN keeps.  The full client/edge stack adds nothing to this figure (the
address is fixed the moment DNS answers; §4.3 confirms everything
downstream is address-indifferent), so the harness skips it for speed and
the integration tests separately verify that indifference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.loadstats import LoadDistribution, pool_load
from ..analysis.reporting import TextTable, format_quantity
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..core.strategies import SelectionStrategy, StaticAssignment, RandomSelection
from ..dns.records import RRType
from ..dns.server import AuthoritativeServer, QueryContext
from ..dns.wire import Message
from ..edge.customers import AccountType, Customer, CustomerRegistry
from ..edge.datacenter import TrafficLog
from ..netsim.addr import parse_prefix
from ..workload.hostnames import lognormal_sizes
from ..workload.zipf import ZipfDistribution

__all__ = ["Fig7Config", "Fig7Result", "run_fig7_panel", "run_fig7", "render_fig7_table"]

#: The deployment's pools: 18 /20s pre-agility; one /20; one /24; one /32.
PRE_AGILITY_PREFIXES = list(parse_prefix("10.0.0.0/15").subnets(20))[:18]
AGILE_SLASH20 = parse_prefix("192.0.0.0/20")
AGILE_SLASH24 = parse_prefix("192.0.2.0/24")
AGILE_SLASH32 = parse_prefix("192.0.2.1/32")


@dataclass(frozen=True, slots=True)
class Fig7Config:
    num_sites: int = 5_000
    requests: int = 200_000
    zipf_s: float = 1.1
    seed: int = 20200601
    hostnames_per_address_static: int = 16  # co-hosting density pre-agility


@dataclass(frozen=True, slots=True)
class Fig7Result:
    panel: str
    pool_label: str
    requests_dist: LoadDistribution
    bytes_dist: LoadDistribution

    @property
    def request_spread_orders(self) -> float:
        return self.requests_dist.spread_orders_of_magnitude

    @property
    def bytes_spread_orders(self) -> float:
        return self.bytes_dist.spread_orders_of_magnitude


def _build_server(
    universe_sites: list[str],
    pool: AddressPool,
    strategy: SelectionStrategy,
    seed: int,
) -> tuple[AuthoritativeServer, CustomerRegistry]:
    registry = CustomerRegistry()
    customer = Customer("panel", AccountType.FREE, set(universe_sites))
    registry.add(customer)
    engine = PolicyEngine(random.Random(seed))
    engine.add(Policy("panel", pool, strategy=strategy, ttl=30))
    source = PolicyAnswerSource(engine, registry)
    return AuthoritativeServer(source), registry


def run_fig7_panel(
    panel: str,
    pool: AddressPool,
    strategy: SelectionStrategy,
    config: Fig7Config,
    use_wire: bool = False,
) -> Fig7Result:
    """Drive one panel's request stream and aggregate per-address load.

    ``use_wire=True`` routes every query through full encode/decode —
    identical results, ~5× slower; the default exercises the same serving
    logic at message level.  One test pins the equivalence.
    """
    rng_sizes = lognormal_sizes(seed=config.seed)
    sites = [f"site{i:07d}.panel.example" for i in range(config.num_sites)]
    server, _ = _build_server(sites, pool, strategy, config.seed)
    zipf = ZipfDistribution(config.num_sites, config.zipf_s)
    ranks = zipf.sample_many(config.requests, seed=config.seed + 1)
    log = TrafficLog()
    context = QueryContext(pop="dc1")

    for i, rank in enumerate(ranks):
        hostname = sites[int(rank)]
        query = Message.query(i & 0xFFFF, hostname, RRType.A)
        if use_wire:
            response = Message.decode(server.handle_wire(query.encode(), context))
        else:
            response = server.handle_query(query, context)
        address = response.answers[0].rdata.address
        log.record_request(address, rng_sizes(hostname, "/"))

    return Fig7Result(
        panel=panel,
        pool_label=pool.name,
        requests_dist=pool_load(log, pool, "requests"),
        bytes_dist=pool_load(log, pool, "bytes"),
    )


def run_fig7(config: Fig7Config | None = None) -> dict[str, Fig7Result]:
    """All three panels of Figure 7 (plus the §5 one-address run)."""
    config = config or Fig7Config()
    results: dict[str, Fig7Result] = {}

    # (a) pre-agility: hostnames statically packed onto two /20s.
    two_slash20s = AddressPool(
        parse_prefix("10.0.0.0/19"), name="two busiest /20s (static)"
    )
    results["7a"] = run_fig7_panel(
        "7a", two_slash20s,
        StaticAssignment(per_address=config.hostnames_per_address_static),
        config,
    )

    # (b) per-query random over one /20.
    results["7b"] = run_fig7_panel(
        "7b", AddressPool(AGILE_SLASH20, name="random /20"), RandomSelection(), config
    )

    # (c) per-query random over one /24.
    results["7c"] = run_fig7_panel(
        "7c", AddressPool(AGILE_SLASH24, name="random /24"), RandomSelection(), config
    )

    # (§5) one address for everything.
    results["one"] = run_fig7_panel(
        "one", AddressPool(AGILE_SLASH32, name="one address /32"), RandomSelection(), config
    )
    return results


def render_fig7_table(results: dict[str, Fig7Result]) -> str:
    table = TextTable(
        "Figure 7 — per-IP load before/after addressing agility",
        ["panel", "pool", "addresses", "loaded", "req spread (o.o.m.)",
         "req max/min", "bytes spread (o.o.m.)", "gini(req)"],
    )
    for key, result in results.items():
        reqs = result.requests_dist
        table.add_row(
            key,
            result.pool_label,
            format_quantity(len(reqs.sorted_desc)),
            format_quantity(reqs.loaded_addresses),
            f"{result.request_spread_orders:.1f}",
            f"{reqs.max_min_factor:.1f}",
            f"{result.bytes_spread_orders:.1f}",
            f"{reqs.gini:.3f}",
        )
    return table.render()
