"""Experiments E5–E6: socket-lookup dispatch cost and socket-table scaling.

§3.3 reports the kernel numbers: sk_lookup costs ~1–5 % of baseline
packets-per-second (~1M TCP / ~2.5M UDP in-kernel) and proportional CPU.
Our substrate is Python, so absolute pps is ~3 orders lower; the *claims*
being reproduced are relative:

* attaching an sk_lookup program to the lookup path costs a few percent
  versus the bare listener lookup (E5);
* the naive per-IP bind model scales memory and table size linearly with
  pool width while sk_lookup stays constant (E6, Figure 4a vs 4c).

Builders here construct the three configurations over identical packet
workloads; the benchmarks time them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.reporting import TextTable, format_quantity
from ..netsim.addr import IPAddress, Prefix, parse_address, parse_prefix
from ..netsim.packet import FiveTuple, Packet, Protocol
from ..sockets.lookup import Engine, LookupPath
from ..sockets.sklookup import MatchRule, SkLookupProgram, SockArray, Verdict
from ..sockets.socktable import SocketTable

__all__ = [
    "DispatchSetup",
    "build_baseline_listener",
    "build_wildcard",
    "build_sk_lookup",
    "build_per_ip_binds",
    "make_packets",
    "dispatch_all",
    "dispatch_all_batched",
    "render_scaling_table",
]

INTERNAL = parse_address("198.18.0.1")
DEFAULT_POOL = parse_prefix("192.0.0.0/20")


@dataclass(slots=True)
class DispatchSetup:
    """A ready-to-dispatch lookup path plus bookkeeping for reporting."""

    label: str
    table: SocketTable
    path: LookupPath

    @property
    def socket_count(self) -> int:
        return len(self.table.sockets())

    @property
    def memory_bytes(self) -> int:
        return self.table.memory_bytes()


def build_baseline_listener(port: int = 80, protocol: Protocol = Protocol.TCP) -> DispatchSetup:
    """E5 baseline: a single bound listener, no programs attached.

    Packets must target the listener's address — this is the fastest the
    classic lookup path can be.
    """
    table = SocketTable()
    table.bind_listen(protocol, INTERNAL, port, owner="svc")
    return DispatchSetup("baseline-listener", table, LookupPath(table))


def build_wildcard(pool: Prefix = DEFAULT_POOL, port: int = 80,
                   protocol: Protocol = Protocol.TCP) -> DispatchSetup:
    table = SocketTable()
    table.bind_listen(protocol, None, port, owner="svc")
    return DispatchSetup("wildcard", table, LookupPath(table))


def build_sk_lookup(pool: Prefix = DEFAULT_POOL, port: int = 80,
                    protocol: Protocol = Protocol.TCP, extra_rules: int = 0,
                    engine: Engine | str = Engine.COMPILED) -> DispatchSetup:
    """The paper's configuration: one socket, one prefix rule (plus
    ``extra_rules`` no-match rules ahead of it, for program-length
    sensitivity ablations).  ``engine`` picks the program executor —
    benchmarks build the same program twice to report the
    interpreter-vs-compiled speedup."""
    table = SocketTable()
    sock = table.bind_listen(protocol, INTERNAL, port, owner="svc")
    sock_map = SockArray(1)
    sock_map.update(0, sock)
    rules = [
        MatchRule(Verdict.PASS, protocol, (parse_prefix(f"172.16.{i}.0/24"),),
                  port, port, map_key=0, label="filler")
        for i in range(extra_rules)
    ]
    rules.append(MatchRule(Verdict.PASS, protocol, (pool,), port, port, map_key=0))
    program = SkLookupProgram("svc", sock_map, rules)
    path = LookupPath(table, engine=engine)
    path.attach(program)
    return DispatchSetup(f"sk_lookup(+{extra_rules},{Engine(engine).value})", table, path)


def build_per_ip_binds(pool: Prefix, port: int = 80,
                       protocol: Protocol = Protocol.TCP) -> DispatchSetup:
    """Figure 4a: one listening socket per pool address."""
    table = SocketTable()
    for address in pool.addresses():
        table.bind_listen(protocol, address, port, owner="svc")
    return DispatchSetup(f"per-ip-binds(/{pool.length})", table, LookupPath(table))


def make_packets(
    n: int,
    pool: Prefix = DEFAULT_POOL,
    port: int = 80,
    protocol: Protocol = Protocol.TCP,
    to_internal: bool = False,
    seed: int = 99,
) -> list[Packet]:
    """A packet workload: random sources, destinations across the pool
    (or pinned to the internal listener address for the E5 baseline)."""
    rng = random.Random(seed)
    src_base = parse_address("100.64.0.0").value
    packets = []
    for i in range(n):
        dst = INTERNAL if to_internal else pool.random_address(rng)
        packets.append(Packet(FiveTuple(
            protocol,
            IPAddress.v4(src_base + rng.randrange(1 << 20)),
            1024 + rng.randrange(60000),
            dst,
            port,
        ), syn=True))
    return packets


def dispatch_all(setup: DispatchSetup, packets: list[Packet]) -> int:
    """Dispatch packets one at a time (lookup only); returns delivered count."""
    dispatch = setup.path.dispatch
    delivered = 0
    for packet in packets:
        if dispatch(packet, deliver=False).socket is not None:
            delivered += 1
    return delivered


def dispatch_all_batched(setup: DispatchSetup, packets: list[Packet],
                         batch_size: int = 1024) -> int:
    """Dispatch via :meth:`LookupPath.dispatch_batch` in ``batch_size``
    chunks (lookup only); returns delivered count.  This is the throughput
    configuration the batched workload driver uses."""
    dispatch_batch = setup.path.dispatch_batch
    delivered = 0
    for start in range(0, len(packets), batch_size):
        for result in dispatch_batch(packets[start:start + batch_size], deliver=False):
            if result.socket is not None:
                delivered += 1
    return delivered


def render_scaling_table(pool_lengths: tuple[int, ...] = (28, 26, 24, 22, 20)) -> str:
    """E6: socket count and memory, per configuration per pool width."""
    table = TextTable(
        "Figure 4 — socket-table cost by listening configuration (one port, TCP)",
        ["pool", "addresses", "per-ip sockets", "per-ip memory",
         "wildcard sockets", "sk_lookup sockets", "sk_lookup rules"],
    )
    for length in pool_lengths:
        pool = Prefix.of(parse_address("192.0.0.0"), length)
        per_ip = build_per_ip_binds(pool)
        wildcard = build_wildcard(pool)
        sk = build_sk_lookup(pool)
        rules = sum(len(p.rules()) for p in sk.path.programs())
        table.add_row(
            f"/{length}",
            format_quantity(pool.num_addresses),
            format_quantity(per_ip.socket_count),
            format_quantity(per_ip.memory_bytes) + "B",
            wildcard.socket_count,
            sk.socket_count,
            rules,
        )
    return table.render()
