"""Experiment harnesses — one module per paper artefact.

Each module exposes ``run_*`` functions returning structured results and a
``render_*`` helper that prints the paper-shaped table.  The benchmarks in
``benchmarks/`` time these; the examples call them directly;
EXPERIMENTS.md records their output against the paper's numbers.

| Module          | Paper artefact                         |
|-----------------|----------------------------------------|
| fig7            | Figure 7 a/b/c (+ §5 one-address)      |
| fig8            | Figure 8 + the Anderson–Darling test   |
| fig9            | Figure 9 / §6 route-leak detection     |
| sklookup_perf   | §3.3 dispatch cost, Figure 4 scaling   |
| reduction       | §4.2 address-usage reduction           |
| dos             | §6 DoS k-ary search (+ A3 sweep)       |
| ttl             | §3.1/§4.4 binding-lifetime bound       |
| spillover       | §6 DC2 measurement                     |
| coloring        | §6 map colouring                       |
| dnsqps          | §4.2 answering-rate claims             |
| dnsload         | §5.2 DNS-stress reduction (extension)  |
| pageload        | §5.2 page-load decomposition (extension)|
| failover        | §3.4/§4.4 failover recovery (extension)|
| chaos_soak      | §3.4/§6 chaos campaigns vs invariants (extension)|
| bgp_convergence | §4.4/§6 convergence windows vs DNS rebind (extension)|
| flow_perf       | ROADMAP item 1: columnar flow-engine throughput (extension)|
"""

from . import bgp_convergence, chaos_soak, coloring, dnsload, dnsqps, dos, failover, fig7, fig8, fig9, flow_perf, pageload, reduction, sklookup_perf, spillover, ttl

__all__ = [
    "bgp_convergence",
    "chaos_soak",
    "coloring",
    "dnsload",
    "dnsqps",
    "dos",
    "failover",
    "flow_perf",
    "pageload",
    "fig7",
    "fig8",
    "fig9",
    "reduction",
    "sklookup_perf",
    "spillover",
    "ttl",
]
