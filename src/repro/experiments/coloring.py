"""Experiment E12: traffic tuning across anycast datacenters (§6).

"A colour is equivalent to a BGP prefix announcement … aforementioned
measurements may help to identify the smallest number of colours needed to
achieve some property, for example, region isolation or traffic tuning
zones with nearby datacenters."

The harness colours a realistic multi-region PoP set under a sweep of
conflict radii, reporting how many prefixes suffice and verifying region
isolation each time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..agility.coloring import (
    ColoringResult,
    build_conflict_graph,
    color_datacenters,
    verify_coloring,
)
from ..analysis.reporting import TextTable
from ..netsim.addr import parse_prefix
from ..netsim.anycast import AnycastNetwork, build_regional_topology

__all__ = ["ColoringRun", "run_coloring_sweep", "render_coloring_table", "WORLD_REGIONS"]

WORLD_REGIONS = {
    "us-east": ["ashburn", "newyork", "miami"],
    "us-west": ["losangeles", "seattle", "denver"],
    "us-mid": ["chicago", "dallas"],
    "europe": ["london", "frankfurt", "paris", "amsterdam", "madrid", "warsaw"],
    "apac": ["singapore", "tokyo", "sydney", "mumbai"],
    "other": ["saopaulo", "johannesburg"],
}

AVAILABLE_PREFIXES = list(parse_prefix("198.51.0.0/18").subnets(24))


@dataclass(frozen=True, slots=True)
class ColoringRun:
    conflict_km: float
    conflict_edges: int
    colors_needed: int
    isolated: bool
    result: ColoringResult


def build_world(clients_per_region: int = 2) -> AnycastNetwork:
    return build_regional_topology(WORLD_REGIONS, clients_per_region=clients_per_region)


def run_coloring_sweep(
    radii_km: tuple[float, ...] = (500, 1000, 2000, 4000, 8000),
    network: AnycastNetwork | None = None,
) -> list[ColoringRun]:
    network = network or build_world()
    runs: list[ColoringRun] = []
    for radius in radii_km:
        graph = build_conflict_graph(network, conflict_km=radius)
        result = color_datacenters(graph, AVAILABLE_PREFIXES)
        runs.append(ColoringRun(
            conflict_km=radius,
            conflict_edges=graph.number_of_edges(),
            colors_needed=result.num_colors,
            isolated=verify_coloring(graph, result),
            result=result,
        ))
    return runs


def render_coloring_table(runs: list[ColoringRun]) -> str:
    table = TextTable(
        "§6 map colouring — prefixes needed for datacenter isolation "
        f"({sum(len(v) for v in WORLD_REGIONS.values())} PoPs)",
        ["conflict radius (km)", "conflict edges", "prefixes (colours)", "isolation holds"],
    )
    for run in runs:
        table.add_row(
            f"{run.conflict_km:.0f}", run.conflict_edges, run.colors_needed, run.isolated
        )
    return table.render()
