"""Experiment E8 (Figure 9): route-leak detection and mitigation timing.

The scenario, from the paper's actual incident: the CDN originates an
anycast prefix from multiple PoPs to regional peers; a multihomed customer
AS leaks the route learned through one provider to another; the second
provider prefers the (customer) leaked route, and its cone's traffic is
hauled to the wrong continent.  Without per-PoP addressing the leak "goes
undetected"; with it, each PoP monitors for requests on other PoPs'
addresses and flags the leak within a DNS-TTL window.  Mitigation keeps
the policy and swaps to an already-advertised backup prefix.

The harness builds the full stack, injects the leak mid-run, and reports
detection latency (in simulated seconds relative to TTL) and mitigation
horizon.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..agility.leaks import LeakAlert, LeakMitigator, RouteLeakDetector
from ..analysis.reporting import TextTable
from ..clock import Clock
from ..core.agility import AgilityController
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..core.strategies import PerPopAssignment
from ..dns.resolver import RecursiveResolver
from ..dns.stub import StubResolver
from ..edge.cdn import CDN
from ..edge.server import ListenMode
from ..netsim.addr import parse_prefix
from ..netsim.anycast import build_regional_topology
from ..netsim.routeleak import attach_multihomed_leaker, inject_route_leak
from ..web.client import BrowserClient
from ..workload.hostnames import HostnameUniverse, UniverseConfig

__all__ = ["Fig9Config", "Fig9Outcome", "run_fig9", "render_fig9_table"]

POOL_PREFIX = parse_prefix("192.0.2.0/24")
BACKUP_PREFIX = parse_prefix("203.0.113.0/24")
POPS = ("ashburn", "london")


@dataclass(frozen=True, slots=True)
class Fig9Config:
    ttl: int = 30
    clients_per_region: int = 6
    requests_per_phase: int = 60
    num_sites: int = 40
    seed: int = 1969


@dataclass(frozen=True, slots=True)
class Fig9Outcome:
    detected: bool
    alerts: tuple[LeakAlert, ...]
    detection_time: float          # simulated seconds after leak injection
    ttl: int
    mitigation_horizon: float      # seconds from mitigation to full effect
    post_mitigation_clean: bool    # new answers all from the backup prefix


def run_fig9(config: Fig9Config | None = None) -> Fig9Outcome:
    config = config or Fig9Config()
    clock = Clock()
    rng = random.Random(config.seed)

    universe = HostnameUniverse(UniverseConfig(
        num_hostnames=config.num_sites, assets_per_site=1, seed=config.seed,
    ))
    network = build_regional_topology(
        {"us": ["ashburn"], "eu": ["london"]},
        clients_per_region=config.clients_per_region,
        rng=random.Random(config.seed),
    )
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
    cdn.announce_pool(BACKUP_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)

    pool = AddressPool(POOL_PREFIX, name="anycast-pool")
    assignment = PerPopAssignment(list(POPS))
    engine = PolicyEngine(random.Random(config.seed + 1))
    engine.add(Policy("per-pop", pool, strategy=assignment, ttl=config.ttl))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))
    detector = RouteLeakDetector(pool, assignment, list(POPS),
                                 min_requests=3, min_share=0.01)

    clients: list[BrowserClient] = []
    for region in ("us", "eu"):
        for i in range(config.clients_per_region):
            asn = f"eyeball:{region}:{i}"
            resolver = RecursiveResolver(
                f"r-{asn}", clock, cdn.dns_transport(asn), asn=asn,
                tcp_transport=cdn.dns_transport(asn, protocol="tcp"),
            )
            stub = StubResolver(f"s-{asn}", clock, resolver)
            clients.append(BrowserClient(f"c-{asn}", stub, cdn.transport_for(asn)))

    def browse(n: int) -> None:
        for _ in range(n):
            client = rng.choice(clients)
            site = rng.choice(universe.sites)
            try:
                client.fetch(site)
            except (ConnectionRefusedError, Exception):
                pass
            clock.advance(1.0)

    # Phase 1: clean traffic — detector must stay quiet.
    browse(config.requests_per_phase)
    assert detector.scan({p: cdn.datacenters[p].traffic for p in POPS}) == []

    # Phase 2: inject the Figure 9 leak.  Clear logs so detection latency
    # is measured from the injection instant; close connections and flush
    # DNS so post-leak traffic re-resolves (caches expire within one TTL —
    # we charge a full TTL below).
    for pop in POPS:
        cdn.datacenters[pop].traffic.clear()
    attach_multihomed_leaker(cdn.network, "leaker", "transit:eu:0", "transit:us:0")
    inject_route_leak(cdn.network, "leaker", POOL_PREFIX)
    leak_at = clock.now()
    clock.advance(config.ttl)  # cached pre-leak answers age out
    for client in clients:
        client.close_all()

    detected = False
    alerts: tuple[LeakAlert, ...] = ()
    detection_time = float("inf")
    for _ in range(10):  # scan every ~TTL/2 until detection
        browse(config.requests_per_phase // 2)
        alerts = tuple(detector.scan({p: cdn.datacenters[p].traffic for p in POPS}))
        if alerts:
            detected = True
            detection_time = clock.now() - leak_at
            break

    # Phase 3: mitigate — keep the policy, change the prefix.
    controller = AgilityController(engine, clock)
    mitigator = LeakMitigator(controller, clock)
    op = mitigator.mitigate("per-pop", AddressPool(BACKUP_PREFIX, name="backup"))
    horizon = op.propagation_horizon - clock.now()

    probe = RecursiveResolver(
        "probe", clock, cdn.dns_transport("eyeball:us:0"),
        tcp_transport=cdn.dns_transport("eyeball:us:0", protocol="tcp"),
    )
    addresses = probe.resolve_addresses(universe.sites[0])
    clean = bool(addresses) and all(a in BACKUP_PREFIX for a in addresses)

    return Fig9Outcome(
        detected=detected,
        alerts=alerts,
        detection_time=detection_time,
        ttl=config.ttl,
        mitigation_horizon=horizon,
        post_mitigation_clean=clean,
    )


def render_fig9_table(outcome: Fig9Outcome) -> str:
    table = TextTable(
        "Figure 9 — anycast route-leak detection & mitigation",
        ["quantity", "value"],
    )
    table.add_row("leak detected", outcome.detected)
    table.add_row("detection time (s, after injection)", f"{outcome.detection_time:.0f}")
    table.add_row("DNS TTL (s)", outcome.ttl)
    table.add_row("detection within O(TTL)",
                  outcome.detection_time <= 4 * outcome.ttl)
    table.add_row("mitigation horizon (s, = TTL)", f"{outcome.mitigation_horizon:.0f}")
    table.add_row("post-mitigation answers on backup prefix", outcome.post_mitigation_clean)
    for alert in outcome.alerts[:4]:
        table.add_row(
            f"alert @ {alert.observed_at}",
            f"{alert.requests} reqs on {alert.address} (expected at {alert.expected_pop})",
        )
    return table.render()
