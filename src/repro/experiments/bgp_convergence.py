"""Experiment E19: BGP convergence windows vs the DNS rebind race.

E18 soaks the control plane against faults whose *routing* is resolved
instantly — the static Gao–Rexford fixpoint recomputes the moment a
prefix is withdrawn.  E19 turns on the event-driven speakers
(:mod:`repro.netsim.speakers`) so withdrawals, leaks, and session resets
propagate AS-by-AS with MRAI pacing, and asks the question §4.4 leaves
open: during the convergence window, which control plane heals the
client first — BGP (the withdrawal reaching every eyeball's upstream)
or DNS (probe → detect → rebind → TTL expiry)?

Four pinned scenarios, one campaign each:

``withdraw/static``
    The E18 regime, as the baseline: the same withdrawal with
    instantaneous routing.
``withdraw/speakers``
    The same withdrawal under event-driven propagation — the report's
    convergence windows measure how long the network disagreed with
    itself, and the ``convergence_window`` invariant bounds client pain
    by ``min(TTL + detection budget, convergence time)``.
``leak/speakers``
    A :data:`~repro.chaos.world.LEAKER_AS` route leak: catchments shift
    but fetches keep succeeding, so only the monitor's catchment-churn
    detection notices — ``leak_containment`` checks it drains traffic
    off the leaked path inside the budget.
``slow+withdraw/speakers``
    The withdrawal with propagation slowed 5× (gray routing fault): the
    convergence window stretches, and the DNS path must win the race.

Every speakers run also carries the differential oracle: after the
horizon the network settles and per-client catchments must equal the
static fixpoint (the ``bgp_oracle`` invariant).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..analysis.reporting import TextTable
from ..chaos.generator import Campaign, FaultSpec
from ..chaos.runner import CampaignResult, run_campaign
from ..chaos.world import LEAKER_AS, PRIMARY_POP, PRIMARY_PREFIX, ChaosConfig

__all__ = [
    "BGPConvergenceConfig",
    "BGPScenario",
    "BGPConvergenceOutcome",
    "run_bgp_convergence",
    "render_bgp_table",
]


@dataclass(frozen=True, slots=True)
class BGPConvergenceConfig:
    #: Default chosen so the leak scenario actually bites: with this
    #: topology seed the leaker sits on a transit US eyeballs prefer,
    #: so the leak shifts real client traffic (36 leaked fetches) and
    #: the catchment-churn detector has something to catch.
    seed: int = 7
    horizon: float = 120.0
    fault_at: float = 30.0
    fault_s: float = 60.0
    chaos: ChaosConfig = field(default_factory=ChaosConfig)


@dataclass(frozen=True, slots=True)
class BGPScenario:
    """One pinned scenario: a name and the campaign that realizes it."""

    name: str
    campaign: Campaign


@dataclass(frozen=True, slots=True)
class BGPConvergenceOutcome:
    config: BGPConvergenceConfig
    scenarios: tuple[BGPScenario, ...]
    results: tuple[CampaignResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def reports(self) -> list[dict]:
        return [
            {"scenario": s.name, **r.report()}
            for s, r in zip(self.scenarios, self.results)
        ]

    def reports_json(self) -> str:
        """Deterministic JSON: same seed, same bytes (CI runs this twice
        and ``cmp``s the outputs)."""
        return json.dumps(self.reports(), indent=2)


def build_scenarios(config: BGPConvergenceConfig) -> tuple[BGPScenario, ...]:
    base = {"horizon": config.horizon}
    speakers = {**base, "routing": "speakers"}
    withdrawal = FaultSpec(
        when=config.fault_at, kind="pop_withdrawal", duration=config.fault_s,
        params={"prefix": str(PRIMARY_PREFIX), "pop": PRIMARY_POP},
    )
    leak = FaultSpec(
        when=config.fault_at, kind="route_leak", duration=config.fault_s,
        params={"leaker": LEAKER_AS, "prefix": str(PRIMARY_PREFIX)},
    )
    slow = FaultSpec(
        when=config.fault_at - 5.0, kind="slow_convergence",
        duration=config.fault_s + 10.0, params={"factor": 5.0},
    )
    seed = config.seed
    return (
        BGPScenario("withdraw/static", Campaign(
            name="e19-withdraw-static", seed=seed,
            faults=(withdrawal,), overrides=dict(base))),
        BGPScenario("withdraw/speakers", Campaign(
            name="e19-withdraw-speakers", seed=seed,
            faults=(withdrawal,), overrides=dict(speakers))),
        BGPScenario("leak/speakers", Campaign(
            name="e19-leak-speakers", seed=seed,
            faults=(leak,), overrides=dict(speakers))),
        BGPScenario("slow+withdraw/speakers", Campaign(
            name="e19-slow-withdraw-speakers", seed=seed,
            faults=(slow, withdrawal), overrides=dict(speakers))),
    )


def run_bgp_convergence(
    config: BGPConvergenceConfig | None = None,
) -> BGPConvergenceOutcome:
    config = config or BGPConvergenceConfig()
    scenarios = build_scenarios(config)
    results = tuple(
        run_campaign(s.campaign, config.chaos) for s in scenarios
    )
    return BGPConvergenceOutcome(
        config=config, scenarios=scenarios, results=results)


def _dash(value: float | None, fmt: str = "{:.0f}") -> str:
    return "—" if value is None else fmt.format(value)


def render_bgp_table(outcome: BGPConvergenceOutcome) -> str:
    table = TextTable(
        f"E19 — convergence windows vs DNS rebind "
        f"(seed {outcome.config.seed}): client availability while BGP "
        f"and DNS race to heal",
        ["scenario", "engine", "avail", "converge (s)", "msgs",
         "churn", "oracle", "detect (s)", "violations"],
    )
    for scenario, result in zip(outcome.scenarios, outcome.results):
        report = result.report()
        routing = report.get("routing")
        if routing is None:
            converge, msgs, churn, oracle = "—", "—", "—", "n/a"
        else:
            windows = routing["convergence_windows"]
            converge = (
                f"{max(c - o for o, c in windows):.1f}" if windows else "0"
            )
            bgp = routing["bgp"]
            msgs = bgp["announcements_sent"] + bgp["withdrawals_sent"]
            churn = bgp["churn_events"]
            oracle = (
                "skipped" if not routing["oracle_checked"]
                else ("MISMATCH" if routing["oracle_mismatches"] else "equal")
            )
        table.add_row(
            scenario.name,
            "speakers" if routing else "static",
            f"{report['availability']:.4f}",
            converge,
            msgs,
            churn,
            oracle,
            _dash(report["detection_s"]),
            len(result.violations) or "none",
        )
    verdict = ("all invariants hold" if outcome.ok
               else f"{sum(len(r.violations) for r in outcome.results)} "
                    f"VIOLATION(S)")
    return (f"{table.render()}\n{verdict} across "
            f"{len(outcome.results)} scenarios")
