"""Experiment E20: live re-addressing — staged campaigns under chaos.

E18 (:mod:`~repro.experiments.chaos_soak`) proves the control plane
*survives* faults; E20 asks the harder operational question from §4.2 and
§6 — can the deployment **change its own addressing while serving**?
Three arms:

``shrink-under-chaos``
    The full /20 → /24 → /32 staged shrink plus a §5.2 cadence change,
    run while a fault schedule fires (a degraded resolver path and a
    crashed server — the background noise of a real window).  Must
    complete every step with zero violations: in particular zero dropped
    established connections (``no_dropped_established``) and no fresh
    dial into vacated space past TTL + grace (``stale_binding_bound``).

``migrate-accounts``
    A per-account pool migration: the policy's whole pool moves to a
    sibling /24 inside the same announced /20, draining the old block on
    the way.  Same zero-downtime bar.

``outage-rollback``
    The negative-path drill: a PoP outage lands mid-step.  The health
    monitor fails the policy over (its mitigation outranks the campaign),
    the step's gate fails, the campaign holds twice, then rolls back —
    and ``rollback_restores`` machine-checks that the rollback returned
    the world to the step's starting fingerprint.  Expected terminal
    state: ``rolled_back``, zero violations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..chaos.generator import FaultSpec
from ..chaos.runner import CampaignResult
from ..campaign import (
    default_readdressing_spec,
    migration_spec,
    run_readdressing,
)

__all__ = [
    "ReaddressingConfig",
    "ReaddressingOutcome",
    "run_readdressing_experiment",
    "render_readdressing_table",
    "background_faults",
    "outage_fault",
]


@dataclass(frozen=True, slots=True)
class ReaddressingConfig:
    seed: int = 7


def background_faults() -> tuple[FaultSpec, ...]:
    """The gentle schedule the shrink arm runs over: faults a healthy
    control plane absorbs without failing over."""
    return (
        FaultSpec(when=25.0, kind="transport_degrade", duration=10.0,
                  params={"transport": "resolver:eyeball:us:1",
                          "drop": 0.5, "delay_s": 0.1}),
        FaultSpec(when=95.0, kind="server_crash", duration=20.0,
                  params={"pop": "london"}),
    )


def outage_fault() -> FaultSpec:
    """The rollback arm's trigger: the primary PoP goes dark mid-step-0
    settle window, and reverts before the rollback lands (so the
    restored-fingerprint comparison judges the rollback, not the fault)."""
    return FaultSpec(when=42.0, kind="pop_outage", duration=15.0,
                     params={"pop": "ashburn"})


@dataclass(frozen=True, slots=True)
class ReaddressingOutcome:
    config: ReaddressingConfig
    results: tuple[CampaignResult, ...]
    #: Expected terminal state per arm, position-matched to ``results``.
    expected_states: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return (all(r.ok for r in self.results)
                and all(r.readdressing["state"] == want
                        for r, want in zip(self.results, self.expected_states)))

    @property
    def violation_count(self) -> int:
        return sum(len(r.violations) for r in self.results)

    def reports(self) -> list[dict]:
        return [r.report() for r in self.results]

    def reports_json(self) -> str:
        """One deterministic JSON document: same seed, same bytes."""
        return json.dumps(self.reports(), indent=2)


def run_readdressing_experiment(
    config: ReaddressingConfig | None = None,
) -> ReaddressingOutcome:
    config = config or ReaddressingConfig()
    results = (
        run_readdressing(default_readdressing_spec(), config.seed,
                         faults=background_faults()),
        run_readdressing(migration_spec(), config.seed),
        run_readdressing(default_readdressing_spec(), config.seed,
                         faults=(outage_fault(),)),
    )
    return ReaddressingOutcome(
        config=config,
        results=results,
        expected_states=("complete", "complete", "rolled_back"),
    )


def render_readdressing_table(outcome: ReaddressingOutcome) -> str:
    table = TextTable(
        f"E20 — live re-addressing under chaos (seed {outcome.config.seed})",
        ["campaign", "faults", "state", "steps", "drained", "migrated",
         "dropped", "holds", "rollbacks", "avail", "violations"],
    )
    for result, want in zip(outcome.results, outcome.expected_states):
        campaign = result.readdressing
        steps = campaign["steps"]
        state = campaign["state"]
        table.add_row(
            campaign["name"],
            ",".join(s.kind for s in result.campaign.faults) or "—",
            state if state == want else f"{state} (want {want})",
            f"{campaign['steps_completed']}/{len(steps)}",
            sum(s["drained_completed"] for s in steps),
            sum(s["drained_migrated"] for s in steps),
            sum(len(s["dropped"]) for s in steps),
            campaign["holds"],
            campaign["rollbacks"],
            f"{result.availability:.4f}",
            len(result.violations) or "none",
        )
    verdict = (
        "zero-downtime invariants hold; rollback restores the world"
        if outcome.ok
        else f"{outcome.violation_count} VIOLATION(S) / unexpected terminal state"
    )
    return f"{table.render()}\n{verdict} across {len(outcome.results)} arm(s)"
