"""Experiment E11: the §6 DC2-spillover measurement.

"Despite DC2's intended purpose as a failover, DC2 received significant
legitimate traffic on the IP addresses that could only be learned via DNS
queries to DC1 … the proportion of affected traffic was substantially
higher for IPv6 than for IPv4."

The harness builds the asymmetric deployment (test policy active only at
DC1; the prefix announced and terminated at both DCs), populates clients
whose resolvers are drawn from a mix of local ISPs and DC1-homed public
resolvers, and measures the share of pool traffic landing at DC2.  The
IPv6 effect is reproduced by giving IPv6-capable clients a higher public-
resolver share — the real-world correlation (v6-ready eyeballs
disproportionately use the big anycast resolvers whose nodes sat near
DC1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..agility.measurement import build_mismatched_client, measure_spillover
from ..analysis.reporting import TextTable
from ..clock import Clock
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.resolver import ResolveError
from ..edge.cdn import CDN
from ..edge.server import ListenMode
from ..netsim.addr import parse_prefix
from ..netsim.anycast import build_regional_topology
from ..workload.hostnames import HostnameUniverse, UniverseConfig

__all__ = ["SpilloverRun", "run_spillover", "render_spillover_table"]

V4_POOL = parse_prefix("192.0.2.0/24")
V6_POOL = parse_prefix("2001:db8:100::/48")


@dataclass(frozen=True, slots=True)
class SpilloverRun:
    family: str
    dc1_requests: int
    dc2_requests: int
    spillover_share: float


def _run_family(
    family: str,
    public_resolver_share: float,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> SpilloverRun:
    clock = Clock()
    universe = HostnameUniverse(UniverseConfig(num_hostnames=30, assets_per_site=0, seed=seed))
    network = build_regional_topology(
        {"east": ["ashburn"], "west": ["denver"]},
        clients_per_region=max(4, clients // 2),
        rng=random.Random(seed),
    )
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    pool_prefix = V4_POOL if family == "IPv4" else V6_POOL
    cdn.announce_pool(pool_prefix, ports=(443,), mode=ListenMode.SK_LOOKUP)

    engine = PolicyEngine(random.Random(seed + 1))
    engine.add(Policy("dc1-test", AddressPool(pool_prefix),
                      match={"pop": {"ashburn"}}, ttl=30))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))

    from ..dns.records import RRType
    rrtype = RRType.A if family == "IPv4" else RRType.AAAA
    rng = random.Random(seed + 2)
    west_eyeballs = [a for a in network.client_ases() if str(a).startswith("eyeball:west")]
    east_eyeballs = [a for a in network.client_ases() if str(a).startswith("eyeball:east")]

    for i in range(clients):
        client_asn = rng.choice(west_eyeballs + east_eyeballs)
        # Public-resolver users resolve via a DC1(east)-homed AS regardless
        # of where they sit; ISP-resolver users resolve locally.
        if rng.random() < public_resolver_share:
            resolver_asn = rng.choice(east_eyeballs)
        else:
            resolver_asn = client_asn
        client = build_mismatched_client(
            cdn, clock, client_asn, resolver_asn, name=f"cl{family}{i}"
        )
        client.rrtype = rrtype
        for _ in range(requests_per_client):
            site = rng.choice(universe.sites)
            try:
                client.fetch(site)
            except (ResolveError, ConnectionRefusedError):
                continue

    report = measure_spillover(cdn, pool_prefix)
    return SpilloverRun(
        family=family,
        dc1_requests=report.requests_on_pool.get("ashburn", 0),
        dc2_requests=report.requests_on_pool.get("denver", 0),
        spillover_share=report.spillover_share("ashburn"),
    )


def run_spillover(
    clients: int = 40,
    requests_per_client: int = 5,
    v4_public_resolver_share: float = 0.25,
    v6_public_resolver_share: float = 0.55,
    seed: int = 600,
) -> list[SpilloverRun]:
    return [
        _run_family("IPv4", v4_public_resolver_share, clients, requests_per_client, seed),
        _run_family("IPv6", v6_public_resolver_share, clients, requests_per_client, seed + 50),
    ]


def render_spillover_table(runs: list[SpilloverRun]) -> str:
    table = TextTable(
        "§6 measurement — failover-DC traffic on DNS-test-prefix addresses",
        ["family", "DC1 (DNS-active) reqs", "DC2 (failover) reqs", "spillover share"],
    )
    for run in runs:
        table.add_row(
            run.family, run.dc1_requests, run.dc2_requests,
            f"{run.spillover_share:.1%}",
        )
    return table.render()
