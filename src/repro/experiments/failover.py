"""Experiment E17: failover recovery time — detect → rebind → recover.

§4.4 bounds the lifetime of a name-to-IP binding by "the larger of
connection lifetime and TTL in downstream caches"; §3.4 and §6 argue that
this makes addressing agility a *robustness* primitive: when a PoP dies,
the operator rebinds the pool to a standby prefix and every client
recovers within one TTL of the rebind — no BGP convergence on the critical
path.

The scenario: a service pool announced from a single PoP (the paper's
regional-prefix case) with clients in two regions; at ``fail_at`` the PoP
suffers a total outage (servers crash, all its announcements withdrawn).

* **agile run** — a :class:`~repro.faults.monitor.HealthMonitor` probes
  the data path every ``probe_interval`` and, on failure, swaps the policy
  onto a pre-advertised standby pool.  Client success recovers within
  ``TTL + probe_interval`` of the outage (detection ≤ probe interval;
  cached dead answers age out within TTL of the swap).
* **negative control** — same outage, no monitor: traffic to the pool is
  blackholed until "BGP reconverges" (the prefix is re-originated at the
  surviving PoP after ``bgp_reconverge_s``, modelling slow operator/BGP
  response) — an order of magnitude longer at paper-like settings.

Both runs are deterministic given the seed: the fault schedule is a
:class:`~repro.faults.injector.FaultPlan` on the simulated clock and every
random choice draws from seeded ``random.Random`` instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..clock import Clock
from ..core.agility import AgilityController
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.resolver import RecursiveResolver, ResolveError
from ..dns.stub import StubResolver
from ..edge.cdn import CDN
from ..edge.server import ListenMode
from ..faults.events import FaultTimeline
from ..faults.injector import Fault, FaultInjector, FaultPlan, FaultTargets, PopOutage
from ..faults.monitor import HealthMonitor
from ..netsim.addr import Prefix, parse_prefix
from ..netsim.anycast import build_regional_topology
from ..obs import MetricsRegistry, TraceRecorder
from ..obs.adapters import watch_cache_stats, watch_fault_timeline, watch_resolver_stats
from ..web.client import BrowserClient
from ..workload.hostnames import HostnameUniverse, UniverseConfig

__all__ = [
    "FailoverConfig",
    "TickSample",
    "FailoverOutcome",
    "run_failover",
    "run_failover_pair",
    "render_failover_table",
]

PRIMARY_PREFIX = parse_prefix("192.0.2.0/24")
STANDBY_PREFIX = parse_prefix("203.0.113.0/24")
FAILING_POP = "ashburn"
SURVIVOR_POP = "london"


@dataclass(frozen=True, slots=True)
class FailoverConfig:
    ttl: int = 20
    probe_interval: float = 5.0
    failure_threshold: int = 1
    fail_at: float = 33.0
    duration: float = 240.0
    bgp_reconverge_s: float = 150.0   # outage → prefix re-originated elsewhere
    clients_per_region: int = 4
    num_sites: int = 24
    seed: int = 2021
    agility: bool = True

    @property
    def recovery_bound(self) -> float:
        """§4.4's promise, plus detection and one tick of measurement grain:
        detection ≤ threshold·probe_interval after the outage, and cached
        dead answers age out within one TTL of the swap."""
        return self.ttl + self.failure_threshold * self.probe_interval + 2.0


@dataclass(frozen=True, slots=True)
class TickSample:
    t: float
    successes: int
    failures: int

    @property
    def success_rate(self) -> float:
        total = self.successes + self.failures
        return self.successes / total if total else 1.0


@dataclass(frozen=True, slots=True)
class FailoverOutcome:
    config: FailoverConfig
    ticks: tuple[TickSample, ...]
    detection_time: float       # outage → failover_triggered (inf: never/no monitor)
    recovery_time: float        # outage → sustained full success (inf: never)
    timeline: FaultTimeline
    registry: MetricsRegistry   # every stats surface of the run, snapshotable
    tracer: TraceRecorder       # dispatch + mitigation spans (sim seconds)

    def success_rate_between(self, start: float, end: float) -> float:
        window = [s for s in self.ticks if start <= s.t < end]
        total = sum(s.successes + s.failures for s in window)
        if not total:
            return 1.0
        return sum(s.successes for s in window) / total

    @property
    def recovered_within_bound(self) -> bool:
        return self.recovery_time <= self.config.recovery_bound


@dataclass(slots=True)
class _BgpReconverge(Fault):
    """The no-agility escape hatch: after slow convergence/ops response the
    dead prefix is re-originated at a surviving PoP."""

    prefix: Prefix
    pop: str
    kind: str = "bgp_reconverged"

    @property
    def target(self) -> str:
        return f"{self.pop}:{self.prefix}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_network().announce_from(self.prefix, [self.pop])
        return f"{self.prefix} re-originated at {self.pop}"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_network().withdraw_from(self.prefix, self.pop)
        return f"{self.prefix} withdrawn from {self.pop}"


def run_failover(config: FailoverConfig | None = None) -> FailoverOutcome:
    config = config or FailoverConfig()
    clock = Clock()
    rng = random.Random(config.seed)
    timeline = FaultTimeline()
    registry = MetricsRegistry(clock)
    tracer = TraceRecorder(clock)
    watch_fault_timeline(registry, "faults", timeline)

    universe = HostnameUniverse(UniverseConfig(
        num_hostnames=config.num_sites, assets_per_site=1, seed=config.seed,
    ))
    network = build_regional_topology(
        {"us": [FAILING_POP], "eu": [SURVIVOR_POP]},
        clients_per_region=config.clients_per_region,
        rng=random.Random(config.seed),
    )
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    # The service pool is originated at ONE PoP (a regional prefix); the
    # standby is anycast from every PoP and listening everywhere — the §6
    # "already advertised" backup that makes the rebind instantaneous.
    cdn.announce_pool(PRIMARY_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP,
                      pops=[FAILING_POP])
    cdn.announce_pool(STANDBY_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)

    engine = PolicyEngine(random.Random(config.seed + 1))
    engine.add(Policy("svc", AddressPool(PRIMARY_PREFIX, name="primary"),
                      ttl=config.ttl))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry, tracer=tracer))
    cdn.attach_observability(registry=registry, tracer=tracer)
    controller = AgilityController(engine, clock)

    plan = FaultPlan()
    plan.at(config.fail_at, PopOutage(FAILING_POP))
    plan.at(config.fail_at + config.bgp_reconverge_s,
            _BgpReconverge(PRIMARY_PREFIX, SURVIVOR_POP))
    injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn),
                             rng=random.Random(config.seed + 2), timeline=timeline)

    monitor: HealthMonitor | None = None
    if config.agility:
        monitor = HealthMonitor(
            cdn, clock, controller, "svc",
            probe_hostname=universe.sites[0],
            vantages=["eyeball:us:0", "eyeball:eu:0"],
            failover_pool=AddressPool(STANDBY_PREFIX, name="standby"),
            probe_interval=config.probe_interval,
            failure_threshold=config.failure_threshold,
            timeline=timeline,
            rng=random.Random(config.seed + 3),
            tracer=tracer,
        )

    clients: list[BrowserClient] = []
    for region in ("us", "eu"):
        for i in range(config.clients_per_region):
            asn = f"eyeball:{region}:{i}"
            resolver = RecursiveResolver(
                f"r-{asn}", clock, cdn.dns_transport(asn), asn=asn,
                tcp_transport=cdn.dns_transport(asn, protocol="tcp"),
            )
            stub = StubResolver(f"s-{asn}", clock, resolver)
            watch_resolver_stats(registry, f"resolver.{asn}", resolver.stats)
            watch_cache_stats(registry, f"resolver.{asn}.cache", resolver.cache.stats)
            clients.append(BrowserClient(f"c-{asn}", stub, cdn.transport_for(asn)))

    ticks: list[TickSample] = []
    while clock.now() < config.duration:
        injector.tick()
        if monitor is not None:
            monitor.tick()
        successes = failures = 0
        for client in clients:
            site = rng.choice(universe.sites)
            try:
                client.fetch(site)
                successes += 1
            except (ConnectionRefusedError, ConnectionResetError, ResolveError):
                failures += 1
        ticks.append(TickSample(clock.now(), successes, failures))
        clock.advance(1.0)

    failover = timeline.first("failover_triggered")
    detection_time = failover.at - config.fail_at if failover else float("inf")

    # Recovery: the first instant after the outage from which every later
    # tick is fully successful (sustained, not a lucky cache hit).
    recovery_time = float("inf")
    post = [s for s in ticks if s.t >= config.fail_at]
    for i, sample in enumerate(post):
        if all(later.failures == 0 for later in post[i:]):
            recovery_time = sample.t - config.fail_at
            break

    # Close the mitigation trace: the monitor recorded detect → precheck →
    # rebind as they happened; the fault instant and the recovery tail are
    # only known here.  All durations are simulated seconds.
    trace = (monitor.last_failover_trace if monitor is not None else None) or "failover:control"
    tracer.record(trace, "fault", config.fail_at, config.fail_at,
                  f"{FAILING_POP} outage")
    if recovery_time != float("inf"):
        rebind = timeline.first("failover_triggered")
        recover_start = rebind.at if rebind is not None else config.fail_at
        tracer.record(trace, "recover", recover_start,
                      config.fail_at + recovery_time,
                      "sustained full success")
        registry.histogram(
            "failover.recovery_seconds",
            help="outage -> sustained success, simulated seconds",
        ).observe(recovery_time)
    if detection_time != float("inf"):
        registry.histogram(
            "failover.detection_seconds",
            help="outage -> failover_triggered, simulated seconds",
        ).observe(detection_time)

    return FailoverOutcome(
        config=config,
        ticks=tuple(ticks),
        detection_time=detection_time,
        recovery_time=recovery_time,
        timeline=timeline,
        registry=registry,
        tracer=tracer,
    )


def run_failover_pair(config: FailoverConfig | None = None) -> dict[str, FailoverOutcome]:
    """The experiment proper: agile loop vs no-agility negative control."""
    config = config or FailoverConfig()
    agile = run_failover(config)
    control = run_failover(FailoverConfig(**{
        **{f: getattr(config, f) for f in config.__dataclass_fields__},
        "agility": False,
    }))
    return {"agile": agile, "control": control}


def render_failover_table(pair: dict[str, FailoverOutcome]) -> str:
    agile, control = pair["agile"], pair["control"]
    config = agile.config
    table = TextTable(
        "E17 — failover recovery time: health-monitor rebind vs BGP reconvergence",
        ["quantity", "agile (monitor on)", "control (no agility)"],
    )
    table.add_row("DNS TTL (s)", config.ttl, config.ttl)
    table.add_row("probe interval (s)", config.probe_interval, "—")
    table.add_row("detection time (s)", f"{agile.detection_time:.0f}", "—")
    table.add_row("recovery time (s)", f"{agile.recovery_time:.0f}",
                  f"{control.recovery_time:.0f}")
    table.add_row(f"recovered within TTL+probe bound ({config.recovery_bound:.0f}s)",
                  agile.recovered_within_bound, control.recovered_within_bound)
    window_end = config.fail_at + config.recovery_bound
    table.add_row(
        "success rate in bound window after outage",
        f"{agile.success_rate_between(config.fail_at, window_end):.2f}",
        f"{control.success_rate_between(config.fail_at, window_end):.2f}",
    )
    table.add_row("BGP reconvergence (s, control's only exit)",
                  "—", f"{config.bgp_reconverge_s:.0f}")
    trace = agile.timeline.first("failover_triggered")
    if trace is not None:
        phases = agile.tracer.phase_durations()
        rendered = "  ".join(
            f"{phase}={phases[phase]:.0f}"
            for phase in ("detect", "precheck", "rebind", "recover")
            if phase in phases
        )
        table.add_row("mitigation phase durations (s, simulated)", rendered, "—")
    return table.render()
