"""Extension experiment E14: one-address reduces stresses on DNS (§5.2).

"CDNs commonly use low DNS TTLs to permit rapid load rebalancing.  Under
one-address, a CDN can adopt long-lived expiries akin to root DNS servers,
thereby extending cache duration and reducing frequency of client DNS
requests."

The experiment quantifies that trade: a client population browses for a
fixed simulated horizon under (a) randomized /20 with short TTLs (the
rebalancing regime) and (b) one-address with root-scale TTLs.  The metric
is authoritative queries per HTTP request — the DNS "stress" — plus the
coalescing-driven DNS avoidance the one-address arm also enjoys (reused
connections need no lookup at all).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..clock import Clock
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.resolver import ResolveError
from ..edge.cdn import CDN
from ..edge.server import ListenMode
from ..netsim.addr import Prefix, parse_prefix
from ..netsim.anycast import build_regional_topology
from ..workload.clients import ClientPopulation, PopulationConfig
from ..workload.hostnames import HostnameUniverse, UniverseConfig
from ..workload.traffic import SessionGenerator

__all__ = ["DNSLoadRun", "run_dns_load", "render_dns_load_table"]

REST_POOL = parse_prefix("192.0.0.0/20")
ONE_IP = parse_prefix("192.0.2.1/32")


@dataclass(frozen=True, slots=True)
class DNSLoadRun:
    label: str
    ttl: int
    http_requests: int
    authoritative_queries: int

    @property
    def queries_per_request(self) -> float:
        if not self.http_requests:
            return 0.0
        return self.authoritative_queries / self.http_requests


def _run_arm(label: str, active: Prefix, ttl: int, sessions: int, seed: int) -> DNSLoadRun:
    clock = Clock()
    universe = HostnameUniverse(UniverseConfig(num_hostnames=120, assets_per_site=2, seed=seed))
    network = build_regional_topology({"us": ["ashburn"]}, clients_per_region=4,
                                      rng=random.Random(seed))
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    cdn.announce_pool(REST_POOL, ports=(443,), mode=ListenMode.SK_LOOKUP)
    engine = PolicyEngine(random.Random(seed + 1))
    engine.add(Policy(label, AddressPool(REST_POOL, active=active), ttl=ttl))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))

    eyeballs = [a for a in network.client_ases() if str(a).startswith("eyeball")]
    population = ClientPopulation(cdn, clock, eyeballs,
                                  PopulationConfig(clients_per_resolver=2, seed=seed + 2))
    generator = SessionGenerator(universe)
    rng = random.Random(seed + 3)

    fetches = 0
    for session in generator.sessions(sessions, seed=seed + 4):
        client = rng.choice(population.clients)
        for page in session.pages:
            for hostname, path in page.resources:
                try:
                    client.fetch(hostname, path)
                    fetches += 1
                except (ResolveError, ConnectionRefusedError):
                    continue
        client.close_all()
        clock.advance(120.0)  # inter-session think time lets short TTLs expire

    total_auth = sum(
        dc.dns.stats.queries for dc in cdn.datacenters.values() if dc.dns is not None
    )
    return DNSLoadRun(label=label, ttl=ttl, http_requests=fetches,
                      authoritative_queries=total_auth)


def run_dns_load(sessions: int = 120, seed: int = 33) -> list[DNSLoadRun]:
    """The §5.2 comparison plus a TTL sweep on the one-address arm."""
    return [
        _run_arm("random-/20 ttl=30 (rebalancing regime)", REST_POOL, 30, sessions, seed),
        _run_arm("one-ip ttl=30", ONE_IP, 30, sessions, seed),
        _run_arm("one-ip ttl=3600", ONE_IP, 3600, sessions, seed),
        _run_arm("one-ip ttl=86400 (root-like)", ONE_IP, 86400, sessions, seed),
    ]


def render_dns_load_table(runs: list[DNSLoadRun]) -> str:
    table = TextTable(
        "§5.2 — DNS stress: authoritative queries per HTTP request",
        ["configuration", "TTL (s)", "HTTP requests", "auth queries", "queries/request"],
    )
    for run in runs:
        table.add_row(run.label, run.ttl, run.http_requests,
                      run.authoritative_queries, f"{run.queries_per_request:.4f}")
    return table.render()
