"""Experiment E4 (Figure 8): connection coalescing under one-address.

The paper compares requests-per-connection at the one-IP datacenter
against the rest of the world (standard addressing), split by TCP and
QUIC, over a 7-day 1 % connection sample, and rejects the same-population
hypothesis with a 2-sample Anderson–Darling test (AD = 3532.4 ≫
ADcrit = 6.546 at α = 0.001).

This harness runs the full stack: a client population (H2/H3/H1 mix)
browses Zipf-weighted sessions against a live simulated CDN; the only
difference between arms is the DNS policy — per-query random over a /20
("rest of world") versus a /32 ("one IP").  Requests-per-connection per
transport falls out of the clients' connection pools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.reporting import TextTable
from ..analysis.stats import ADResult, anderson_darling_2sample
from ..clock import Clock
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.resolver import ResolveError
from ..edge.cdn import CDN
from ..edge.server import ListenMode
from ..netsim.addr import Prefix, parse_prefix
from ..netsim.anycast import build_regional_topology
from ..netsim.packet import Protocol
from ..workload.clients import ClientPopulation, PopulationConfig
from ..workload.hostnames import HostnameUniverse, UniverseConfig
from ..workload.traffic import SessionGenerator

__all__ = ["Fig8Config", "Fig8Arm", "Fig8Result", "run_fig8_arm", "run_fig8", "render_fig8_table"]

REST_OF_WORLD_POOL = parse_prefix("192.0.0.0/20")
ONE_IP_POOL = parse_prefix("192.0.2.1/32")


@dataclass(frozen=True, slots=True)
class Fig8Config:
    num_sites: int = 300
    assets_per_site: int = 3
    sessions: int = 150
    clients_per_resolver: int = 3
    zipf_s: float = 1.1
    seed: int = 20210601
    ttl: int = 300


@dataclass(slots=True)
class Fig8Arm:
    """One arm's measurements: requests per connection, by transport."""

    label: str
    tcp_rpc: list[int] = field(default_factory=list)
    quic_rpc: list[int] = field(default_factory=list)

    def all_rpc(self) -> list[int]:
        return self.tcp_rpc + self.quic_rpc

    def mean(self, values: list[int]) -> float:
        return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True, slots=True)
class Fig8Result:
    one_ip: Fig8Arm
    rest_of_world: Fig8Arm
    ad_tcp: ADResult
    ad_all: ADResult


def run_fig8_arm(label: str, active: Prefix, config: Fig8Config) -> Fig8Arm:
    """Build a fresh CDN + population and browse sessions over it."""
    clock = Clock()
    universe = HostnameUniverse(UniverseConfig(
        num_hostnames=config.num_sites,
        assets_per_site=config.assets_per_site,
        seed=config.seed,
    ))
    network = build_regional_topology(
        {"us": ["ashburn"], "eu": ["london"]},
        clients_per_region=5,
        rng=random.Random(config.seed),
    )
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    cdn.announce_pool(REST_OF_WORLD_POOL, ports=(443,), mode=ListenMode.SK_LOOKUP)

    engine = PolicyEngine(random.Random(config.seed + 1))
    pool = AddressPool(REST_OF_WORLD_POOL, active=active, name=label)
    engine.add(Policy(label, pool, ttl=config.ttl))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))

    eyeballs = [a for a in network.client_ases() if str(a).startswith("eyeball")]
    population = ClientPopulation(
        cdn, clock, eyeballs,
        PopulationConfig(clients_per_resolver=config.clients_per_resolver,
                         seed=config.seed + 2),
    )
    generator = SessionGenerator(universe, zipf_s=config.zipf_s)

    arm = Fig8Arm(label=label)
    rng = random.Random(config.seed + 3)
    for session in generator.sessions(config.sessions, seed=config.seed + 4):
        client = rng.choice(population.clients)
        for page in session.pages:
            for hostname, path in page.resources:
                try:
                    client.fetch(hostname, path)
                except (ResolveError, ConnectionRefusedError):
                    continue
        # A session ends: connections close and are tallied.
        for connection in client.open_connections():
            if connection.requests == 0:
                continue
            if connection.transport is Protocol.QUIC:
                arm.quic_rpc.append(connection.requests)
            else:
                arm.tcp_rpc.append(connection.requests)
        client.close_all()
        clock.advance(30.0)  # think time between sessions
    return arm


def run_fig8(config: Fig8Config | None = None) -> Fig8Result:
    config = config or Fig8Config()
    one_ip = run_fig8_arm("one-ip", ONE_IP_POOL, config)
    rest = run_fig8_arm("rest-of-world", REST_OF_WORLD_POOL, config)
    return Fig8Result(
        one_ip=one_ip,
        rest_of_world=rest,
        ad_tcp=anderson_darling_2sample(one_ip.tcp_rpc, rest.tcp_rpc),
        ad_all=anderson_darling_2sample(one_ip.all_rpc(), rest.all_rpc()),
    )


def render_fig8_table(result: Fig8Result) -> str:
    table = TextTable(
        "Figure 8 — requests per connection: one-IP vs rest of world",
        ["population", "transport", "connections", "mean req/conn", "p90"],
    )
    import numpy as np

    for arm in (result.one_ip, result.rest_of_world):
        for transport, values in (("TCP", arm.tcp_rpc), ("QUIC", arm.quic_rpc)):
            if not values:
                continue
            table.add_row(
                arm.label, transport, len(values),
                f"{arm.mean(values):.2f}",
                f"{np.percentile(values, 90):.0f}",
            )
    lines = [table.render(), "", result.ad_all.report(0.001) + "  (all transports)"]
    return "\n".join(lines)
