"""Experiment E9 (+A3): DoS isolation at the speed of TTLs.

Reproduces §6's claim that a k-ary search over agile addresses isolates an
application-layer (L7) target from n co-hosted services in worst-case
``TTL + t·⌈log_k n⌉`` seconds, and distinguishes L3/4 floods (which do not
follow DNS) in a single round.  The A3 ablation sweeps k and the probe TTL
to expose the latency/address-consumption tradeoff.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..agility.dos import (
    DoSVerdict,
    KarySearchMitigator,
    L7Attacker,
    L34Attacker,
    isolation_time_bound,
)
from ..analysis.reporting import TextTable
from ..clock import Clock
from ..core.agility import AgilityController
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..core.strategies import MappedAssignment
from ..netsim.addr import parse_prefix

__all__ = ["DoSRun", "run_dos_case", "run_dos_sweep", "render_dos_table"]

POOL_PREFIX = parse_prefix("192.0.2.0/24")


@dataclass(frozen=True, slots=True)
class DoSRun:
    n_services: int
    k: int
    probe_ttl: int
    initial_ttl: int
    verdict: DoSVerdict

    @property
    def bound(self) -> float:
        return isolation_time_bound(self.n_services, self.k, self.initial_ttl, self.probe_ttl)


def run_dos_case(
    n_services: int = 1000,
    k: int = 8,
    probe_ttl: int = 5,
    initial_ttl: int = 300,
    attack: str = "l7",
    targets: int = 1,
    seed: int = 7,
) -> DoSRun:
    """One end-to-end k-ary search against a synthetic attack."""
    clock = Clock()
    engine = PolicyEngine(random.Random(seed))
    pool = AddressPool(POOL_PREFIX, name="dos-pool")
    engine.add(Policy("protected", pool, strategy=MappedAssignment(), ttl=initial_ttl))
    controller = AgilityController(engine, clock)
    mitigator = KarySearchMitigator(
        controller, "protected", clock, k=k, probe_ttl=probe_ttl,
        rng=random.Random(seed),
    )
    services = [f"svc{i:05d}.example.com" for i in range(n_services)]
    if attack == "l7":
        rng = random.Random(seed + 1)
        observer = L7Attacker(set(rng.sample(services, targets)))
    elif attack == "l34":
        observer = L34Attacker({pool.address_at(0)})
    else:
        raise ValueError(f"unknown attack kind {attack!r}")
    verdict = mitigator.run(services, observer)
    return DoSRun(n_services, k, probe_ttl, initial_ttl, verdict)


def run_dos_sweep(
    n_services: int = 1000,
    ks: tuple[int, ...] = (2, 4, 8, 16, 32),
    probe_ttl: int = 5,
    initial_ttl: int = 300,
    seed: int = 7,
) -> list[DoSRun]:
    """A3: isolation time vs k (addresses consumed per round = k)."""
    return [
        run_dos_case(n_services, k, probe_ttl, initial_ttl, "l7", seed=seed + k)
        for k in ks
    ]


def render_dos_table(runs: list[DoSRun]) -> str:
    table = TextTable(
        "§6 DoS k-ary search — isolation time vs worst-case bound",
        ["n", "k", "probe TTL", "kind", "rounds", "elapsed (s)",
         "bound TTL+t·⌈log_k n⌉ (s)", "within bound", "targets"],
    )
    for run in runs:
        verdict = run.verdict
        table.add_row(
            run.n_services, run.k, run.probe_ttl, verdict.kind, verdict.rounds,
            f"{verdict.elapsed:.0f}", f"{run.bound:.0f}",
            verdict.within_bound, len(verdict.isolated),
        )
    return table.render()
