"""Experiment E-flow: end-to-end columnar flow-engine throughput.

ROADMAP item 1 asks for the request path to keep up at CDN scale: PR 4
batched the sk_lookup dispatch stage, and this experiment measures the
rest — DNS query → policy match → mint → resolver cache → ECMP →
dispatch → serve — scalar versus columnar, per stage and end to end.

Builders here construct one self-contained world (a single PoP terminating
a policy-minted /24, a hostname universe with certificates, a resolver
cache, and a :class:`~repro.flow.FlowEngine`); ``bench_flow_engine.py``
times the stages over identical seeded workloads and the perf gate pins
the batched/scalar ratios.  Absolute flows/s are machine-bound and stay
ungated; the *ratios* are the reproducible claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..clock import Clock
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.cache import DNSCache
from ..edge.datacenter import Datacenter
from ..edge.server import ListenMode
from ..flow.backend import default_backend
from ..flow.batch import FlowBatch
from ..flow.engine import FlowEngine
from ..netsim.geo import GeoPoint
from ..netsim.packet import Protocol
from ..web.tls import CertificateStore
from ..workload.hostnames import HostnameUniverse, UniverseConfig
from ..workload.traffic import RequestStream

__all__ = [
    "FlowWorld",
    "build_flow_world",
    "make_flow_columns",
    "run_engine",
    "run_scalar",
]

POOL_PREFIX_TEXT = "192.0.2.0/24"


@dataclass(slots=True)
class FlowWorld:
    """One ready-to-drive deployment for flow-engine experiments."""

    clock: Clock
    universe: HostnameUniverse
    dc: Datacenter
    cache: DNSCache
    source: PolicyAnswerSource
    engine: FlowEngine


def build_flow_world(
    num_hostnames: int = 64,
    num_servers: int = 8,
    seed: int = 7,
    ttl: int = 300,
    backend: str = "auto",
    pop: str = "bench-pop",
) -> FlowWorld:
    """A single-PoP policy deployment behind a resolver cache.

    ``ttl`` defaults high so steady-state workloads exercise the cache-hit
    path; pass ``ttl=0`` (use-once answers, never cached) to force every
    flow through the mint path instead.
    """
    from ..netsim.addr import parse_prefix

    clock = Clock()
    universe = HostnameUniverse(UniverseConfig(num_hostnames=num_hostnames, seed=seed))
    certs = CertificateStore()
    for customer in universe.registry.customers():
        for cert in customer.make_certificates():
            certs.add(cert)

    dc = Datacenter(
        name=pop,
        location=GeoPoint(pop, 0.0, 0.0),
        registry=universe.registry,
        origins=universe.origins,
        certs=certs,
        num_servers=num_servers,
    )
    pool_prefix = parse_prefix(POOL_PREFIX_TEXT)
    dc.configure_listening(
        pool_prefix, ports=(443,), mode=ListenMode.SK_LOOKUP, protocols=(Protocol.TCP,)
    )

    engine = PolicyEngine(random.Random(seed))
    pool = AddressPool(pool_prefix, name="flow-pool")
    engine.add(Policy("randomize-all", pool, match={}, ttl=ttl))
    source = PolicyAnswerSource(engine, universe.registry)
    cache = DNSCache(clock)
    flow_engine = FlowEngine(
        source, cache, dc, pop, backend=default_backend(backend)
    )
    return FlowWorld(clock, universe, dc, cache, source, flow_engine)


def make_flow_columns(
    world: FlowWorld,
    n: int,
    seed: int = 99,
    batch_size: int = 1024,
    zipf_s: float = 1.1,
) -> list[tuple[list[str], list, list[int]]]:
    """A seeded flow corpus as struct-of-arrays column batches."""
    stream = RequestStream(world.universe, zipf_s=zipf_s)
    return list(stream.sample_flow_batches(n, seed, batch_size=batch_size))


def run_engine(world: FlowWorld, columns: list[tuple[list[str], list, list[int]]]) -> int:
    """Drive the columnar engine over a corpus; returns flows served OK."""
    engine = world.engine
    before = engine.stats.served_ok
    for hostnames, src_addrs, src_ports in columns:
        engine.run_batch(FlowBatch(list(hostnames), list(src_addrs), list(src_ports)))
    return engine.stats.served_ok - before


def run_scalar(world: FlowWorld, columns: list[tuple[list[str], list, list[int]]]) -> int:
    """Drive the loop-of-scalars reference over a corpus; returns 200s."""
    engine = world.engine
    ok = 0
    for hostnames, src_addrs, src_ports in columns:
        batch = engine.run_scalar(hostnames, src_addrs, src_ports)
        ok += sum(1 for s in batch.statuses if s == 200)
    return ok
