"""Extension experiment E16: client-side page-load wins of one-address (§5.2).

"Standard tasks like DNS lookups and establishing TCP connections can
comprise large fraction of page load times (7 % and 53 %, respectively).
When all content is served from the same IP address, a client can
potentially avoid these performance hits."

The harness browses identical sessions under (a) per-query random /20 with
rebalancing TTLs and (b) one-address with long TTLs, charging each fetch
its protocol-accurate RTTs via :mod:`repro.web.timing`.  Reported: the
DNS / connection-setup / transfer decomposition and the total page-load
delta — connection setup shrinks because coalescing reuses connections,
DNS shrinks because caches stay warm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..deploy import Deployment, DeploymentConfig
from ..dns.resolver import ResolveError
from ..web.timing import LatencyParams, PageLoadAccount, time_fetch
from ..workload.traffic import SessionGenerator

__all__ = ["PageLoadRun", "run_pageload", "render_pageload_table"]


@dataclass(frozen=True, slots=True)
class PageLoadRun:
    label: str
    account: PageLoadAccount

    @property
    def mean_fetch_ms(self) -> float:
        if not self.account.fetches:
            return 0.0
        return self.account.total_ms / self.account.fetches


def _run_arm(label: str, active: str | None, ttl: int, sessions: int, seed: int) -> PageLoadRun:
    config = DeploymentConfig(
        regions={"us": ["ashburn"]},
        num_hostnames=150,
        assets_per_site=3,
        active=active,
        ttl=ttl,
        seed=seed,
        backup=None,
        ports=(443,),
    )
    deployment = Deployment.build(config)
    generator = SessionGenerator(deployment.universe)
    rng = random.Random(seed + 9)
    eyeballs = deployment.eyeballs()
    clients = [deployment.new_client(asn) for asn in eyeballs[:4]]
    account = PageLoadAccount()

    for session in generator.sessions(sessions, seed=seed + 10):
        client = rng.choice(clients)
        asn = str(client.name).split("-")[1]  # "client-<asn>-<n>"
        for page in session.pages:
            for hostname, path in page.resources:
                stub_misses_before = client.stub.cache.stats.misses
                upstream_before = client.stub.recursive.stats.upstream_queries
                try:
                    outcome = client.fetch(hostname, path)
                except (ResolveError, ConnectionRefusedError):
                    continue
                pop = deployment.cdn._conn_home[outcome.connection.conn_id]
                params = LatencyParams(
                    client_edge_rtt_ms=deployment.network.client_rtt_ms(asn, pop)
                )
                account.add(time_fetch(
                    params,
                    version=client.version,
                    new_connection=not outcome.coalesced
                    and outcome.connection.requests <= 1,
                    stub_missed=client.stub.cache.stats.misses > stub_misses_before,
                    recursive_missed=(
                        client.stub.recursive.stats.upstream_queries > upstream_before
                    ),
                    body_len=outcome.response.body_len,
                ))
        client.close_all()
        deployment.clock.advance(90.0)
    return PageLoadRun(label=label, account=account)


def run_pageload(sessions: int = 100, seed: int = 77) -> list[PageLoadRun]:
    return [
        _run_arm("random-/20 ttl=30", None, 30, sessions, seed),
        _run_arm("one-ip ttl=3600", "192.0.2.1/32", 3600, sessions, seed),
    ]


def render_pageload_table(runs: list[PageLoadRun]) -> str:
    table = TextTable(
        "§5.2 — page-load decomposition (paper cites DNS 7% / conn setup 53% "
        "of load time as the avoidable costs)",
        ["configuration", "fetches", "dns share", "setup share",
         "transfer share", "mean ms/fetch"],
    )
    for run in runs:
        account = run.account
        table.add_row(
            run.label, account.fetches,
            f"{account.share('dns'):.1%}",
            f"{account.share('setup'):.1%}",
            f"{account.share('transfer'):.1%}",
            f"{run.mean_fetch_ms:.2f}",
        )
    return table.render()
