"""Experiment E10: TTL dynamics and the binding-lifetime bound (§3.1/§4.4).

Two claims under test:

1. "The lifetime of the name-to-IP binding is upper-bounded in time by the
   larger of connection lifetime and TTL in downstream caches" — after a
   policy change, an honest resolver keeps returning the old pool for at
   most TTL seconds.
2. "Resolvers commonly modify TTL values" — a clamping resolver stretches
   the observed binding lifetime past the authoritative TTL, which is the
   operational reason mitigations must assume a violation margin.

The harness rebinds a policy from pool A to pool B at t₀ and measures, per
resolver behaviour, when each resolver's answers actually flip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.reporting import TextTable
from ..clock import Clock
from ..core.agility import AgilityController
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.cache import TTLPolicy
from ..dns.resolver import RecursiveResolver
from ..dns.server import AuthoritativeServer, QueryContext
from ..edge.customers import AccountType, Customer, CustomerRegistry
from ..netsim.addr import parse_prefix
from ..obs import MetricsRegistry, TraceRecorder
from ..obs.adapters import watch_cache_stats, watch_resolver_stats

__all__ = ["TTLRun", "run_ttl_experiment", "render_ttl_table"]

POOL_A = parse_prefix("192.0.2.0/24")
POOL_B = parse_prefix("203.0.113.0/24")


@dataclass(frozen=True, slots=True)
class TTLRun:
    resolver_label: str
    authoritative_ttl: int
    clamp_min: int            # 0 = honest
    observed_flip_time: float # seconds after rebind when answers moved to B
    bound: float              # what the paper's model predicts as the max


def run_ttl_experiment(
    authoritative_ttl: int = 30,
    clamp_mins: tuple[int, ...] = (0, 60, 300),
    probe_interval: float = 1.0,
    seed: int = 3,
    registry: MetricsRegistry | None = None,
) -> list[TTLRun]:
    """``registry``: optional :class:`~repro.obs.MetricsRegistry` — each
    resolver's cache/query counters are attached under ``ttl.<label>.*``,
    observed flip times land in the ``ttl.flip_seconds`` histogram, and
    per-phase (warm / converge) span durations are recorded."""
    runs: list[TTLRun] = []
    for clamp in clamp_mins:
        clock = Clock()
        customers = CustomerRegistry()
        customers.add(Customer("c", AccountType.FREE, {"site.example.com"}))
        engine = PolicyEngine(random.Random(seed))
        engine.add(Policy("p", AddressPool(POOL_A, name="A"), ttl=authoritative_ttl))
        server = AuthoritativeServer(PolicyAnswerSource(engine, customers))
        controller = AgilityController(engine, clock)

        policy = TTLPolicy.honest() if clamp == 0 else TTLPolicy.clamping(clamp)
        resolver = RecursiveResolver(
            f"res-clamp{clamp}", clock,
            transport=lambda wire: server.handle_wire(wire, QueryContext(pop="dc1")),
            tcp_transport=lambda wire: server.handle_wire(
                wire, QueryContext(pop="dc1", transport="tcp")
            ),
            ttl_policy=policy,
        )
        label = "honest" if clamp == 0 else f"clamps-to-{clamp}s"
        tracer = TraceRecorder(clock) if registry is not None else None
        if registry is not None:
            watch_resolver_stats(registry, f"ttl.{label}.resolver", resolver.stats)
            watch_cache_stats(registry, f"ttl.{label}.cache", resolver.cache.stats)

        # Warm the cache just before the rebind (worst case for staleness).
        if tracer is not None:
            with tracer.span(f"rebind:{label}", "warm"):
                resolver.resolve_addresses("site.example.com")
        else:
            resolver.resolve_addresses("site.example.com")
        controller.swap_pool("p", AddressPool(POOL_B, name="B"))
        rebind_at = clock.now()

        flip_time = float("inf")
        horizon = max(authoritative_ttl, clamp) + 5 * probe_interval
        while clock.now() - rebind_at < horizon:
            clock.advance(probe_interval)
            addresses = resolver.resolve_addresses("site.example.com")
            if addresses and all(a in POOL_B for a in addresses):
                flip_time = clock.now() - rebind_at
                break
        if tracer is not None:
            tracer.record(f"rebind:{label}", "converge", rebind_at, clock.now(),
                          "rebind -> answers on pool B" if flip_time != float("inf")
                          else "never converged within horizon")
            for phase, duration in tracer.phase_durations().items():
                registry.histogram(
                    f"ttl.phase_seconds.{phase}",
                    help="simulated seconds spent in this rebind phase",
                ).observe(duration)
            if flip_time != float("inf"):
                registry.histogram(
                    "ttl.flip_seconds",
                    help="rebind -> observed answer flip, simulated seconds",
                ).observe(flip_time)
        runs.append(TTLRun(
            resolver_label=label,
            authoritative_ttl=authoritative_ttl,
            clamp_min=clamp,
            observed_flip_time=flip_time,
            bound=float(max(authoritative_ttl, clamp)) + probe_interval,
        ))
    return runs


def render_ttl_table(runs: list[TTLRun]) -> str:
    table = TextTable(
        "§4.4 binding lifetime vs resolver TTL behaviour",
        ["resolver", "auth TTL (s)", "observed flip (s)", "model bound (s)", "within bound"],
    )
    for run in runs:
        table.add_row(
            run.resolver_label,
            run.authoritative_ttl,
            f"{run.observed_flip_time:.0f}",
            f"{run.bound:.0f}",
            run.observed_flip_time <= run.bound,
        )
    return table.render()
