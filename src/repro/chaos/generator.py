"""Campaigns as data: seeded fault schedules a run can replay exactly.

A **campaign** is nothing but JSON — a name, a seed, optional config
overrides, and a list of ``(when, duration, kind, params)`` fault specs.
Everything downstream depends on that representation staying dumb:

* the runner replays a campaign deterministically (same JSON, same seed →
  byte-identical report);
* the minimizer slices the fault list and replays subsets — only possible
  because a schedule is a value, not live objects;
* CI pins known-bad campaigns as fixture files and asserts they still
  violate and still minimize to the same core.

The :class:`CampaignGenerator` samples campaigns from the registered
fault vocabulary (:mod:`repro.faults.registry`) with every random draw
taken from a ``random.Random`` seeded by ``stable_hash`` — two machines
generating campaign ``(seed, index)`` get the same schedule.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace

from ..faults.errors import FaultConfigError
from ..faults.injector import Fault, FaultPlan
from ..faults.registry import build_fault
from ..hashing import stable_hash
from .world import (
    LEAKER_AS,
    PRIMARY_POP,
    PRIMARY_PREFIX,
    ChaosConfig,
    resolver_transport_names,
)

__all__ = ["FaultSpec", "Campaign", "CampaignGenerator"]


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, JSON-scalar params only (see the registry)."""

    when: float
    kind: str
    duration: float | None = None
    params: dict = field(default_factory=dict)

    def build(self) -> Fault:
        return build_fault(self.kind, **self.params)

    def to_dict(self) -> dict:
        return {
            "when": self.when,
            "duration": self.duration,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            when=float(data["when"]),
            kind=str(data["kind"]),
            duration=None if data.get("duration") is None else float(data["duration"]),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class Campaign:
    """A named, seeded, replayable fault schedule (+ config overrides)."""

    name: str
    seed: int
    faults: tuple[FaultSpec, ...]
    overrides: dict = field(default_factory=dict)

    def plan(self) -> FaultPlan:
        """Materialize the schedule; validates every spec up front."""
        plan = FaultPlan()
        for spec in self.faults:
            plan.at(spec.when, spec.build(), duration=spec.duration)
        return plan

    def with_faults(self, faults: tuple[FaultSpec, ...]) -> "Campaign":
        """Same campaign, different schedule — the minimizer's subset step.

        Seed and overrides are kept so a subset replays in the identical
        world; only the fault list changes."""
        return replace(self, faults=tuple(faults))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "overrides": dict(self.overrides),
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", [])),
            overrides=dict(data.get("overrides", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        return cls.from_dict(json.loads(text))


class CampaignGenerator:
    """Seeded sampler over the fault vocabulary.

    Faults target the **primary** PoP and the client resolver paths — the
    surfaces the ``svc`` policy actually depends on — because a campaign
    that breaks only the standby region exercises nothing.  Times and
    magnitudes are drawn uniformly (rounded to 0.1 to keep the JSON
    short) inside windows that leave the run a measurable recovery tail:
    injections land in ``[warmup, 0.55 × horizon]`` and durations stay
    under ``max_fault_s``.
    """

    #: Sampled kinds and their relative weights: hard faults and gray
    #: faults roughly balanced, whole-PoP outages rarer than partial ones.
    KIND_WEIGHTS: tuple[tuple[str, int], ...] = (
        ("pop_outage", 1),
        ("pop_withdrawal", 2),
        ("server_crash", 2),
        ("transport_degrade", 2),
        ("slow_server", 2),
        ("lossy_link", 2),
        ("resolver_brownout", 2),
        ("overloaded_pop", 2),
    )

    #: Extra kinds sampled only for speakers-mode configs: routing gray
    #: faults need the event-driven engine to mean anything.
    ROUTING_KIND_WEIGHTS: tuple[tuple[str, int], ...] = (
        ("route_leak", 2),
        ("session_reset", 2),
        ("slow_convergence", 2),
        ("persistent_flap", 1),
    )

    #: Sessions near the primary PoP worth resetting — each sits on the
    #: announcement path from ashburn to the US eyeballs.
    RESET_SESSIONS: tuple[tuple[str, str], ...] = (
        ("pop:ashburn", "transit:us:0"),
        ("pop:ashburn", "transit:us:1"),
        ("transit:us:0", "t1:0"),
    )

    def __init__(self, config: ChaosConfig | None = None,
                 max_faults: int = 3, warmup_s: float = 20.0,
                 max_fault_s: float = 35.0) -> None:
        if max_faults < 1:
            raise FaultConfigError("campaigns need at least one fault")
        self.config = config or ChaosConfig()
        self.max_faults = max_faults
        self.warmup_s = warmup_s
        self.max_fault_s = max_fault_s

    def generate(self, seed: int, count: int) -> list[Campaign]:
        return [self.campaign(seed, index) for index in range(count)]

    def campaign(self, seed: int, index: int) -> Campaign:
        rng = random.Random(stable_hash("chaos-campaign", seed, index) & 0xFFFFFFFF)
        n = rng.randint(1, self.max_faults)
        specs = sorted(
            (self._sample_fault(rng) for _ in range(n)),
            key=lambda spec: (spec.when, spec.kind),
        )
        # Speakers campaigns carry the engine choice as an override so a
        # pinned fixture replays standalone, without the generator config.
        overrides = (
            {"routing": "speakers"}
            if self.config.routing == "speakers" else {}
        )
        return Campaign(
            name=f"campaign-{seed}-{index:03d}",
            seed=stable_hash("chaos-run", seed, index) & 0x7FFFFFFF,
            faults=tuple(specs),
            overrides=overrides,
        )

    # -- sampling ------------------------------------------------------------

    def _sample_fault(self, rng: random.Random) -> FaultSpec:
        weights = self.KIND_WEIGHTS
        if self.config.routing == "speakers":
            weights = weights + self.ROUTING_KIND_WEIGHTS
        kinds = [k for k, w in weights for _ in range(w)]
        kind = rng.choice(kinds)
        when = round(rng.uniform(self.warmup_s, self.config.horizon * 0.55), 1)
        duration = round(rng.uniform(10.0, self.max_fault_s), 1)
        return FaultSpec(when=when, kind=kind, duration=duration,
                         params=self._sample_params(kind, rng))

    def _sample_params(self, kind: str, rng: random.Random) -> dict:
        if kind == "pop_outage":
            return {"pop": PRIMARY_POP}
        if kind == "pop_withdrawal":
            return {"prefix": str(PRIMARY_PREFIX), "pop": PRIMARY_POP}
        if kind == "server_crash":
            return {"pop": PRIMARY_POP}   # injector rng picks the box
        if kind == "transport_degrade":
            names = resolver_transport_names(self.config)
            return {
                "transport": rng.choice(names),
                "drop": round(rng.uniform(0.3, 0.7), 2),
                "delay_s": round(rng.uniform(0.0, 0.2), 2),
            }
        if kind == "slow_server":
            return {"pop": PRIMARY_POP, "factor": round(rng.uniform(5.0, 20.0), 1)}
        if kind == "lossy_link":
            return {"pop": PRIMARY_POP, "drop": round(rng.uniform(0.3, 0.7), 2)}
        if kind == "resolver_brownout":
            return {
                "transport": "*",
                "drop": round(rng.uniform(0.2, 0.5), 2),
                "delay_s": round(rng.uniform(0.05, 0.3), 2),
            }
        if kind == "overloaded_pop":
            # Coalescing keeps fresh dials per tick low — only a cap this
            # tight actually makes an edge shed.
            return {"pop": PRIMARY_POP, "capacity": rng.randint(1, 3)}
        if kind == "route_leak":
            return {"leaker": LEAKER_AS, "prefix": str(PRIMARY_PREFIX)}
        if kind == "session_reset":
            a, b = rng.choice(self.RESET_SESSIONS)
            return {"a": a, "b": b}
        if kind == "slow_convergence":
            return {"factor": round(rng.uniform(3.0, 8.0), 1)}
        if kind == "persistent_flap":
            return {
                "prefix": str(PRIMARY_PREFIX),
                "pop": PRIMARY_POP,
                "period": round(rng.uniform(4.0, 10.0), 1),
            }
        raise FaultConfigError(f"generator has no sampler for kind {kind!r}")
