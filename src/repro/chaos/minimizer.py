"""Delta-debugging: shrink a violating campaign to its causal core.

A generated campaign that trips an invariant usually carries bystander
faults — schedules are sampled, not crafted.  Because a campaign is pure
data over a deterministic replay (same seed → same world → same report),
Zeller's *ddmin* applies directly: test subsets of the fault list, keep
any subset that still produces the **same invariant violation**, and
converge to a 1-minimal schedule — removing any single remaining fault
makes the violation disappear.  That minimal schedule is the bug report:
"these faults, in this order, break this promise."
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from .generator import Campaign, FaultSpec
from .runner import run_campaign
from .world import ChaosConfig

__all__ = ["MinimizationResult", "ddmin", "minimize_campaign"]


@dataclass(frozen=True, slots=True)
class MinimizationResult:
    original: Campaign
    minimized: Campaign
    invariant: str          # the violation the minimizer preserved
    tests_run: int          # replays spent shrinking

    @property
    def removed(self) -> int:
        return len(self.original.faults) - len(self.minimized.faults)


def ddmin(items: Sequence, test: Callable[[Sequence], bool]) -> list:
    """Zeller's ddmin over ``items``: smallest sublist where ``test`` holds.

    ``test(items)`` must be True (the caller verifies the full input
    fails).  Subsets preserve relative order — fault schedules are
    order-sensitive.  The result is 1-minimal: dropping any single
    element makes ``test`` False.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        size = (len(items) + granularity - 1) // granularity
        chunks = [items[i:i + size] for i in range(0, len(items), size)]
        reduced = False
        for i, chunk in enumerate(chunks):
            if test(chunk):
                items, granularity, reduced = chunk, 2, True
                break
            complement = [x for j, c in enumerate(chunks) if j != i for x in c]
            if complement and test(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def minimize_campaign(
    campaign: Campaign,
    base_config: ChaosConfig | None = None,
    invariant: str | None = None,
) -> MinimizationResult:
    """Shrink ``campaign`` to the minimal schedule still violating.

    ``invariant`` pins which violation to preserve; by default the first
    (most severe by the invariant ordering) violation of the full run.
    Raises ``ValueError`` if the campaign does not violate at all — there
    is nothing to minimize.
    """
    first = run_campaign(campaign, base_config)
    if not first.violations:
        raise ValueError(f"campaign {campaign.name!r} violates no invariant")
    target = invariant or first.violations[0].invariant
    if not any(v.invariant == target for v in first.violations):
        raise ValueError(
            f"campaign {campaign.name!r} does not violate {target!r} "
            f"(it violates: {sorted({v.invariant for v in first.violations})})"
        )

    tests = 0

    def still_violates(subset: Sequence[FaultSpec]) -> bool:
        nonlocal tests
        tests += 1
        result = run_campaign(campaign.with_faults(tuple(subset)), base_config)
        return any(v.invariant == target for v in result.violations)

    minimal = ddmin(list(campaign.faults), still_violates)
    return MinimizationResult(
        original=campaign,
        minimized=campaign.with_faults(tuple(minimal)),
        invariant=target,
        tests_run=tests,
    )
