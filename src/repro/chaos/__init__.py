"""Deterministic chaos campaigns against the simulated deployment.

The paper's robustness argument (§3.4, §6) is a claim about *recovery
under arbitrary failure*, not about one hand-picked outage — so this
package stress-tests the control plane the way operators stress real
fleets: generate randomized-but-seeded fault schedules (**campaigns**),
replay each against the full simulated deployment, and check a set of
**invariants** the paper's bounds promise (service meets its SLO outside
fault windows, recovery lands within detection + TTL, no stale binding is
served past TTL after a rebind, the monitor does not flap, the dispatch
stats stay coherent).  Because every campaign is pure data over seeded
simulation, a violating campaign can be **minimized**: the delta-debugging
minimizer replays subsets until only the faults that actually cause the
violation remain.

Layout:

* :mod:`~repro.chaos.generator` — :class:`FaultSpec` / :class:`Campaign`
  (JSON-round-trippable schedules) and the seeded
  :class:`CampaignGenerator`;
* :mod:`~repro.chaos.world` — :class:`ChaosConfig` and the standard
  two-region deployment campaigns run against;
* :mod:`~repro.chaos.runner` — :func:`run_campaign` →
  :class:`CampaignResult` with per-tick samples and a deterministic
  report dict;
* :mod:`~repro.chaos.invariants` — :func:`check_invariants` and the
  individual invariant checkers;
* :mod:`~repro.chaos.minimizer` — :func:`minimize_campaign` (ddmin).
"""

from .generator import Campaign, CampaignGenerator, FaultSpec
from .invariants import INVARIANTS, Violation, check_invariants, fault_windows
from .minimizer import MinimizationResult, ddmin, minimize_campaign
from .runner import CampaignResult, ChaosTick, FetchSample, run_campaign
from .world import ChaosConfig, ChaosWorld, build_world

__all__ = [
    "FaultSpec",
    "Campaign",
    "CampaignGenerator",
    "ChaosConfig",
    "ChaosWorld",
    "build_world",
    "ChaosTick",
    "FetchSample",
    "CampaignResult",
    "run_campaign",
    "Violation",
    "INVARIANTS",
    "check_invariants",
    "fault_windows",
    "MinimizationResult",
    "ddmin",
    "minimize_campaign",
]
