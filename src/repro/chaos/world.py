"""The standard deployment chaos campaigns run against.

One fixed, seed-parameterized world keeps campaigns comparable and
replayable: the two-region topology of :mod:`repro.experiments.failover`
(the ``svc`` pool originated at a single primary PoP, a standby prefix
pre-advertised everywhere — §6's instant-rebind setup), plus the pieces
chaos needs on top:

* every client resolver's upstream path is wrapped in a
  :class:`~repro.faults.transport.FlakyTransport` registered as
  ``resolver:<asn>`` so campaigns can degrade or brown out DNS per client
  or fleet-wide;
* client resolvers retry with capped full-jitter backoff (small simulated
  budgets, so a browned-out tick stays bounded);
* the :class:`~repro.faults.monitor.HealthMonitor` runs with gray-failure
  detection on (latency baseline + hedged probes).

Everything is seeded: build the same world twice, get the same world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..clock import Clock
from ..core.agility import AgilityController
from ..core.authoritative import PolicyAnswerSource
from ..core.policy import Policy, PolicyEngine
from ..core.pool import AddressPool
from ..dns.resolver import RecursiveResolver
from ..dns.stub import StubResolver
from ..edge.cdn import CDN
from ..edge.server import ListenMode
from ..faults.events import FaultTimeline
from ..faults.injector import FaultTargets
from ..faults.monitor import HealthMonitor
from ..faults.transport import FlakyTransport
from ..hashing import stable_hash
from ..netsim.addr import parse_prefix
from ..netsim.anycast import build_regional_topology
from ..obs import MetricsRegistry
from ..obs.adapters import watch_fault_timeline
from ..web.client import BrowserClient
from ..workload.hostnames import HostnameUniverse, UniverseConfig

__all__ = [
    "PRIMARY_PREFIX",
    "STANDBY_PREFIX",
    "PRIMARY_POP",
    "STANDBY_POP",
    "LEAKER_AS",
    "ChaosConfig",
    "ChaosWorld",
    "build_world",
    "resolver_transport_names",
]

PRIMARY_PREFIX = parse_prefix("192.0.2.0/24")
STANDBY_PREFIX = parse_prefix("203.0.113.0/24")
PRIMARY_POP = "ashburn"
STANDBY_POP = "london"
REGIONS = (("us", PRIMARY_POP), ("eu", STANDBY_POP))
#: The leak-prone stub AS present in speakers-mode worlds: a customer of
#: one transit per region (Figure 9's AS3 shape), so flipping its export
#: policy pulls one region's eyeballs cross-region through it.
LEAKER_AS = "leaky:cust"


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Tunables of the chaos world — and the bounds invariants enforce.

    ``detection_budget_s`` is the *declared* detection SLO, deliberately
    independent of how the monitor is tuned: the recovery invariant holds
    the deployment to ``TTL + detection budget + grace``, so a mis-tuned
    monitor (threshold so high it detects late or never) is a violation
    rather than a silently relaxed bound.

    ``routing`` selects the BGP engine: ``"static"`` (default) is the
    instantaneous fixpoint the repo has always used; ``"speakers"`` runs
    the event-driven :class:`~repro.netsim.speakers.SpeakerSimulation` on
    the world clock (MRAI ``mrai_s``, per-link delays scaled from
    ``link_delay_s``), announces the primary prefix *anycast* from both
    PoPs (so routing faults shift catchments instead of just blackholing),
    attaches the :data:`LEAKER_AS` stub, probes every eyeball as a
    vantage, and turns on the monitor's catchment-churn detection with
    ``routing_threshold`` consecutive rerouted rounds.
    """

    ttl: int = 20
    probe_interval: float = 5.0
    failure_threshold: int = 1
    latency_factor: float = 3.0
    gray_threshold: int = 2
    horizon: float = 180.0
    clients_per_region: int = 3
    num_sites: int = 12
    slo: float = 0.99             # availability floor outside fault windows
    grace_s: float = 5.0          # measurement-grain slack on every bound
    detection_budget_s: float = 10.0
    routing: str = "static"       # "static" | "speakers"
    mrai_s: float = 1.0
    link_delay_s: float = 0.1
    routing_threshold: int = 2
    #: The advertised space the ``svc`` pool lives in.  Re-addressing
    #: drills override this to a wider block (e.g. ``192.0.0.0/20``) so a
    #: campaign has room to shrink the active set inside it.
    primary_prefix: str = "192.0.2.0/24"

    @property
    def recovery_bound(self) -> float:
        """§4.4's binding-lifetime promise plus the declared detection SLO:
        after a fault (or its failover), full service within one TTL of the
        rebind, the rebind within the detection budget of the fault."""
        return self.ttl + self.detection_budget_s + self.grace_s

    def apply(self, overrides: dict) -> "ChaosConfig":
        """Campaign-level overrides (unknown keys rejected by replace)."""
        return replace(self, **overrides) if overrides else self


def resolver_transport_names(config: ChaosConfig) -> list[str]:
    """The ``resolver:<asn>`` FlakyTransport names the world registers —
    the generator samples transport-fault targets from this list."""
    return [
        f"resolver:eyeball:{region}:{i}"
        for region, _ in REGIONS
        for i in range(config.clients_per_region)
    ]


@dataclass(slots=True)
class ChaosWorld:
    """Everything a campaign run touches, built from (config, seed)."""

    config: ChaosConfig
    clock: Clock
    cdn: CDN
    universe: HostnameUniverse
    engine: PolicyEngine
    controller: AgilityController
    monitor: HealthMonitor
    targets: FaultTargets
    timeline: FaultTimeline
    registry: MetricsRegistry
    clients: list[tuple[str, BrowserClient]] = field(default_factory=list)


def build_world(config: ChaosConfig, seed: int) -> ChaosWorld:
    if config.routing not in ("static", "speakers"):
        raise ValueError(f"unknown routing engine {config.routing!r}")
    speakers = config.routing == "speakers"
    primary = parse_prefix(config.primary_prefix)
    clock = Clock()
    timeline = FaultTimeline()
    registry = MetricsRegistry(clock)
    watch_fault_timeline(registry, "faults", timeline)

    universe = HostnameUniverse(UniverseConfig(
        num_hostnames=config.num_sites, assets_per_site=1, seed=seed,
    ))
    network = build_regional_topology(
        {region: [pop] for region, pop in REGIONS},
        clients_per_region=config.clients_per_region,
        rng=random.Random(seed),
    )
    if speakers:
        from ..netsim.routeleak import attach_multihomed_leaker
        from ..netsim.speakers import LinkProfile, SpeakerSimulation

        attach_multihomed_leaker(
            network, LEAKER_AS, "transit:us:0", "transit:eu:0"
        )
        network.use_simulation(SpeakerSimulation(
            network.graph, clock=clock,
            profile=LinkProfile(
                base_delay_s=config.link_delay_s,
                jitter_s=config.link_delay_s,
                mrai_s=config.mrai_s,
            ),
        ))
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    # Speakers mode announces the primary prefix anycast from both PoPs:
    # routing faults then *shift* catchments (the interesting regime)
    # rather than leaving the prefix single-homed and merely unreachable.
    if speakers:
        cdn.announce_pool(primary, ports=(443,), mode=ListenMode.SK_LOOKUP)
    else:
        cdn.announce_pool(primary, ports=(443,), mode=ListenMode.SK_LOOKUP,
                          pops=[PRIMARY_POP])
    cdn.announce_pool(STANDBY_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
    if speakers:
        # Build-time convergence happens on the virtual time axis; the run
        # then starts from a quiet, converged network with fresh counters.
        network.sim.settle()
        network.sim.warm_reset()

    engine = PolicyEngine(random.Random(seed + 1))
    engine.add(Policy("svc", AddressPool(primary, name="primary"),
                      ttl=config.ttl))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))
    cdn.attach_observability(registry=registry)
    controller = AgilityController(engine, clock)

    vantages = (
        [f"eyeball:{region}:{i}" for region, _ in REGIONS
         for i in range(config.clients_per_region)]
        if speakers
        else [f"eyeball:{region}:0" for region, _ in REGIONS]
    )
    monitor = HealthMonitor(
        cdn, clock, controller, "svc",
        probe_hostname=universe.sites[0],
        vantages=vantages,
        failover_pool=AddressPool(STANDBY_PREFIX, name="standby"),
        probe_interval=config.probe_interval,
        failure_threshold=config.failure_threshold,
        latency_factor=config.latency_factor,
        gray_threshold=config.gray_threshold,
        timeline=timeline,
        rng=random.Random(seed + 3),
        detect_routing=speakers,
        routing_threshold=config.routing_threshold,
    )

    targets = FaultTargets(cdn=cdn)
    world = ChaosWorld(
        config=config, clock=clock, cdn=cdn, universe=universe, engine=engine,
        controller=controller, monitor=monitor, targets=targets,
        timeline=timeline, registry=registry,
    )
    for region, _ in REGIONS:
        for i in range(config.clients_per_region):
            asn = f"eyeball:{region}:{i}"
            flaky = FlakyTransport(
                cdn.dns_transport(asn),
                rng=random.Random(stable_hash("chaos-flaky", asn, seed) & 0xFFFFFFFF),
                clock=clock,
                name=f"resolver:{asn}",
            )
            targets.transports[f"resolver:{asn}"] = flaky
            # Small retry budgets: survive a browned-out path without a
            # single tick's DNS work inflating the simulated clock much.
            resolver = RecursiveResolver(
                f"r-{asn}", clock, flaky, asn=asn,
                rng=random.Random(stable_hash("chaos-resolver", asn, seed) & 0xFFFFFFFF),
                max_retries=2, timeout_s=0.05,
                backoff_base_s=0.05, backoff_cap_s=0.2,
            )
            stub = StubResolver(f"s-{asn}", clock, resolver)
            world.clients.append((asn, BrowserClient(
                f"c-{asn}", stub, cdn.transport_for(asn),
                rng=random.Random(stable_hash("chaos-client", asn, seed) & 0xFFFFFFFF),
            )))
    return world
