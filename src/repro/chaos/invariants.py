"""Invariant monitors: what a healthy deployment must satisfy under chaos.

Each invariant is a pure function over a finished
:class:`~repro.chaos.runner.CampaignResult` — evaluated over the per-tick
sample stream the runner recorded, so a violation names the simulated
instant it first held.  Registered checkers (run in sorted-name order):

``availability``
    Outside every fault window the aggregate success rate meets the SLO.
    A fault window runs from injection to its *recovery deadline* (see
    :func:`fault_windows`): faults may break service, but only while they
    — plus the promised recovery — are in effect.
``recovery``
    After each fault episode's deadline the service is fully back: a
    reverted fault allows ``grace`` past the revert; a fault that never
    reverts inside the horizon must be mitigated (rebind to standby)
    within ``ChaosConfig.recovery_bound`` — TTL plus the *declared*
    detection budget.  This is the invariant that catches a mis-tuned
    monitor: detection slower than the budget leaves failing ticks past
    the deadline.
``stale_binding``
    §4.4's bound made checkable: once a failover has rebound the policy
    and a TTL (+ grace) has elapsed, no *freshly dialled* fetch may still
    land on the old pool's prefix.  Coalesced fetches are exempt —
    riding an established connection past TTL is the legal
    ``max(connection lifetime, TTL)`` half of the bound.
``single_failover``
    At most one failover per fault episode: the monitor must latch, not
    flap between pools while a fault oscillates.
``stats_coherence``
    The dispatch layer's accounting identities hold whichever engine
    (interpreter or compiled) served the run: every sk_lookup program's
    ``runs`` equals its outcomes, every ECMP router's total equals the
    sum of its per-server counts.
``bgp_oracle``
    Speakers mode, differential: once the event-driven network has fully
    converged (no down sessions, suppressions, or live flaps at the
    horizon), per-client anycast catchments must equal the static
    Gao–Rexford fixpoint of :class:`~repro.netsim.bgp.BGPSimulation` —
    event scheduling may reorder the path to the answer, never the
    answer.
``convergence_window``
    Speakers mode: during a withdrawal-class fault, client-visible
    unavailability is bounded by ``min(TTL + detection budget, measured
    BGP convergence time)`` — whichever control plane (DNS rebind or
    route withdrawal propagation) heals first sets the deadline.
``leak_containment``
    Speakers mode: no fresh fetch may still ride a route learned from a
    :class:`~repro.netsim.bgp.LeakingExport` AS past the leak-detection
    budget (+ TTL + grace) — the monitor's catchment-churn detection
    must have drained production traffic off the leaked path by then.
``plan_safety``
    Every enacted failover must be preceded by a symbolic pre-flight
    verdict on the timeline (:func:`repro.check.plan.verify_plan`,
    phase ``"check"``): a ``failover_triggered`` with no ``plan_verified``
    on record — or following a ``plan_unsafe`` — means the monitor
    rebound the policy onto space it could not prove reachable.
``no_dropped_established``
    Re-addressing runs only: a staged campaign may complete or migrate
    an established connection off vacated space, never drop one.  Every
    drain-timeout drop the engine recorded is a violation.
``stale_binding_bound``
    Re-addressing runs only: per advanced step, once the step's
    propagation horizon (enactment + the old TTL) plus grace has
    passed, no fresh dial may land in the space the step vacated.
``rollback_restores``
    Re-addressing runs only: a rolled-back step must leave the world at
    the campaign-scope fingerprint (policy binding, pool shape,
    overlapping announcements) it started from.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..netsim.addr import parse_prefix

if TYPE_CHECKING:
    from .generator import Campaign
    from .runner import CampaignResult
    from .world import ChaosConfig

__all__ = ["Violation", "INVARIANTS", "check_invariants", "fault_windows"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant breach: which invariant, when, and the evidence."""

    invariant: str
    at: float
    detail: str


def fault_windows(campaign: "Campaign", config: "ChaosConfig") -> list[tuple[float, float]]:
    """Per-fault ``(inject, recovery deadline)`` intervals.

    A fault that reverts inside the horizon must be healed ``grace_s``
    after the revert; a permanent (or horizon-crossing) fault must be
    *mitigated* within ``recovery_bound`` of injection — the §6 rebind is
    the only exit, so the deadline does not wait for a revert that never
    comes.
    """
    windows = []
    for spec in campaign.faults:
        end = None if spec.duration is None else spec.when + spec.duration
        if end is not None and end < config.horizon:
            deadline = end + config.grace_s
        else:
            deadline = spec.when + config.recovery_bound
        windows.append((spec.when, deadline))
    return sorted(windows)


def _episodes(windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping fault windows into disjoint episodes."""
    merged: list[tuple[float, float]] = []
    for start, end in windows:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _inside(t: float, windows: list[tuple[float, float]]) -> bool:
    return any(start <= t <= end for start, end in windows)


# -- checkers ------------------------------------------------------------------


def _check_availability(result: "CampaignResult") -> list[Violation]:
    windows = fault_windows(result.campaign, result.config)
    outside = [s for s in result.ticks if not _inside(s.t, windows)]
    successes = sum(s.successes for s in outside)
    total = successes + sum(s.failures for s in outside)
    if not total:
        return []
    rate = successes / total
    if rate >= result.config.slo:
        return []
    first_bad = next((s.t for s in outside if s.failures), outside[0].t)
    return [Violation(
        "availability", first_bad,
        f"success rate {rate:.4f} < SLO {result.config.slo} outside fault windows "
        f"({total - successes}/{total} failed)",
    )]


def _check_recovery(result: "CampaignResult") -> list[Violation]:
    episodes = _episodes(fault_windows(result.campaign, result.config))
    violations = []
    for i, (start, deadline) in enumerate(episodes):
        next_start = episodes[i + 1][0] if i + 1 < len(episodes) else float("inf")
        late = [s for s in result.ticks
                if deadline < s.t < next_start and s.failures]
        if late:
            violations.append(Violation(
                "recovery", late[0].t,
                f"episode starting t={start:g} still failing "
                f"{late[0].t - deadline:.0f}s past its recovery deadline "
                f"t={deadline:g} ({len(late)} failing tick(s))",
            ))
    return violations


def _check_stale_binding(result: "CampaignResult") -> list[Violation]:
    failover = result.timeline.first("failover_triggered")
    if failover is None:
        return []
    primary = parse_prefix(result.config.primary_prefix)
    boundary = failover.at + result.config.ttl + result.config.grace_s
    for fetch in result.fetches:
        if not fetch.ok or fetch.coalesced or fetch.t <= boundary:
            continue
        if fetch.address is not None and fetch.address in primary:
            return [Violation(
                "stale_binding", fetch.t,
                f"fresh dial to {fetch.address} (old pool {primary}) "
                f"{fetch.t - failover.at:.0f}s after failover — past "
                f"TTL {result.config.ttl}s + grace",
            )]
    return []


def _check_single_failover(result: "CampaignResult") -> list[Violation]:
    failovers = result.timeline.events(kind="failover_triggered")
    if len(failovers) <= 1:
        return []
    episodes = _episodes(fault_windows(result.campaign, result.config))
    violations = []
    for start, end in episodes:
        inside = [f for f in failovers if start <= f.at <= end]
        if len(inside) > 1:
            violations.append(Violation(
                "single_failover", inside[1].at,
                f"{len(inside)} failovers within episode "
                f"[{start:g}, {end:g}] — the monitor is flapping",
            ))
    if not violations and len(failovers) > len(episodes):
        violations.append(Violation(
            "single_failover", failovers[-1].at,
            f"{len(failovers)} failovers for {len(episodes)} fault episode(s)",
        ))
    return violations


def _check_stats_coherence(result: "CampaignResult") -> list[Violation]:
    horizon = result.config.horizon
    violations = []
    for dc_name in sorted(result.cdn.datacenters):
        dc = result.cdn.datacenters[dc_name]
        routed = dc.ecmp.stats.routed
        per_server = sum(dc.ecmp.stats.per_server.values())
        if routed != per_server:
            violations.append(Violation(
                "stats_coherence", horizon,
                f"{dc_name}: ECMP routed {routed} != per-server sum {per_server}",
            ))
        for server_name in sorted(dc.servers):
            program = dc.servers[server_name]._sk_program
            if program is None:
                continue
            outcomes = (program.stats["redirects"] + program.stats["drops"]
                        + program.stats["fallthroughs"])
            if program.stats["runs"] != outcomes:
                violations.append(Violation(
                    "stats_coherence", horizon,
                    f"{dc_name}/{server_name}: sk_lookup runs "
                    f"{program.stats['runs']} != outcome sum {outcomes}",
                ))
    return violations


def _check_bgp_oracle(result: "CampaignResult") -> list[Violation]:
    if not result.oracle_checked or not result.oracle_mismatches:
        return []
    client, address, event_driven, static = result.oracle_mismatches[0]
    return [Violation(
        "bgp_oracle", result.config.horizon,
        f"{len(result.oracle_mismatches)} catchment mismatch(es) vs the "
        f"static Gao–Rexford fixpoint; first: client {client} -> {address} "
        f"reaches {event_driven} event-driven but {static} static",
    )]


#: Fault kinds that withdraw the primary PoP's announcement (directly or by
#: taking the whole PoP down) — the faults a convergence window must cover.
_WITHDRAWAL_KINDS = frozenset({"pop_withdrawal", "pop_outage"})


def _check_convergence_window(result: "CampaignResult") -> list[Violation]:
    if result.routing == "static":
        return []
    config = result.config
    all_windows = fault_windows(result.campaign, config)
    violations = []
    for spec in result.campaign.faults:
        if spec.kind not in _WITHDRAWAL_KINDS:
            continue
        # The convergence window this withdrawal opened: the first one
        # starting within a couple of simulated seconds of injection
        # (injection lands on a tick boundary; the first UPDATE follows
        # within one MRAI round).
        window = next(
            (w for w in result.convergence_windows
             if spec.when <= w[0] <= spec.when + 2.0),
            None,
        )
        if window is None:
            continue
        convergence = window[1] - spec.when
        dns_bound = config.ttl + config.detection_budget_s
        deadline = spec.when + min(dns_bound, convergence) + config.grace_s
        end = config.horizon if spec.duration is None else spec.when + spec.duration
        others = [w for w in all_windows if w[0] != spec.when]
        late = [
            s for s in result.ticks
            if deadline < s.t <= end and s.failures and not _inside(s.t, others)
        ]
        if late:
            violations.append(Violation(
                "convergence_window", late[0].t,
                f"{spec.kind} at t={spec.when:g}: still failing at "
                f"t={late[0].t:g}, past min(TTL+budget={dns_bound:g}s, "
                f"convergence={convergence:.1f}s) + grace deadline "
                f"t={deadline:.1f} ({len(late)} failing tick(s))",
            ))
    return violations


def _check_leak_containment(result: "CampaignResult") -> list[Violation]:
    if result.routing == "static":
        return []
    config = result.config
    violations = []
    for spec in result.campaign.faults:
        if spec.kind != "route_leak":
            continue
        boundary = (spec.when + config.detection_budget_s + config.ttl
                    + config.grace_s)
        leaked = next(
            (f for f in result.fetches
             if f.ok and f.via_leaker and not f.coalesced and f.t > boundary),
            None,
        )
        if leaked is not None:
            violations.append(Violation(
                "leak_containment", leaked.t,
                f"route_leak at t={spec.when:g}: fresh fetch by "
                f"{leaked.client} still riding the leaked path at "
                f"t={leaked.t:g}, {leaked.t - boundary:.0f}s past the "
                f"containment boundary t={boundary:g} "
                f"(budget {config.detection_budget_s:g}s + TTL "
                f"{config.ttl}s + grace)",
            ))
    return violations


def _check_plan_safety(result: "CampaignResult") -> list[Violation]:
    violations = []
    for failover in result.timeline.events(kind="failover_triggered"):
        checks = [
            e for e in result.timeline.events(until=failover.at)
            if e.kind in ("plan_verified", "plan_unsafe") and e.phase == "check"
        ]
        if not checks:
            violations.append(Violation(
                "plan_safety", failover.at,
                f"failover of {failover.target!r} enacted with no symbolic "
                f"plan verification on record",
            ))
        elif checks[-1].kind == "plan_unsafe":
            violations.append(Violation(
                "plan_safety", failover.at,
                f"failover of {failover.target!r} enacted despite an unsafe "
                f"plan verdict: {checks[-1].detail}",
            ))
    return violations


# -- re-addressing campaign checkers -------------------------------------------
#
# These three judge a staged re-addressing drill (``result.readdressing``
# is the :meth:`~repro.campaign.engine.CampaignEngine.report` dict) and
# are no-ops on plain chaos runs.


def _check_no_dropped_established(result: "CampaignResult") -> list[Violation]:
    campaign = getattr(result, "readdressing", None)
    if not campaign:
        return []
    violations = []
    for step in campaign["steps"]:
        for t, client, address in step["dropped"]:
            violations.append(Violation(
                "no_dropped_established", t,
                f"step {step['name']!r}: established connection of {client} "
                f"to {address} dropped by the drain timeout — zero-downtime "
                f"means completed or migrated, never dropped",
            ))
    return violations


def _check_stale_binding_bound(result: "CampaignResult") -> list[Violation]:
    campaign = getattr(result, "readdressing", None)
    if not campaign:
        return []
    violations = []
    for step in campaign["steps"]:
        if step["outcome"] != "advanced" or step["kind"] == "cadence":
            continue
        old_space = parse_prefix(step["old_active"])
        new_space = parse_prefix(step["new_active"])
        # The step's propagation horizon is enactment + the old TTL: past
        # it (+ measurement grace) no resolver cache may mint the vacated
        # space, so a fresh dial landing there is a stale binding.
        boundary = step["horizon"] + result.config.grace_s
        for fetch in result.fetches:
            if (not fetch.ok or fetch.coalesced or fetch.address is None
                    or fetch.t <= boundary):
                continue
            if fetch.address in old_space and fetch.address not in new_space:
                violations.append(Violation(
                    "stale_binding_bound", fetch.t,
                    f"step {step['name']!r}: fresh dial by {fetch.client} to "
                    f"{fetch.address} in vacated space {step['old_active']} "
                    f"at t={fetch.t:g}, past the horizon+grace boundary "
                    f"t={boundary:g}",
                ))
                break  # one exhibit per step
    return violations


def _check_rollback_restores(result: "CampaignResult") -> list[Violation]:
    campaign = getattr(result, "readdressing", None)
    if not campaign:
        return []
    violations = []
    for step in campaign["steps"]:
        if step["outcome"] != "rolled_back":
            continue
        before, after = step["fingerprint_before"], step["fingerprint_after"]
        if before != after:
            drifted = sorted(
                k for k in set(before) | set(after)
                if before.get(k) != after.get(k)
            )
            violations.append(Violation(
                "rollback_restores", step["completed_at"],
                f"step {step['name']!r} rolled back but did not restore the "
                f"world it started from (drifted: {', '.join(drifted)})",
            ))
    return violations


INVARIANTS: dict[str, Callable[["CampaignResult"], list[Violation]]] = {
    "availability": _check_availability,
    "recovery": _check_recovery,
    "stale_binding": _check_stale_binding,
    "single_failover": _check_single_failover,
    "stats_coherence": _check_stats_coherence,
    "bgp_oracle": _check_bgp_oracle,
    "convergence_window": _check_convergence_window,
    "leak_containment": _check_leak_containment,
    "plan_safety": _check_plan_safety,
    "no_dropped_established": _check_no_dropped_established,
    "stale_binding_bound": _check_stale_binding_bound,
    "rollback_restores": _check_rollback_restores,
}


def check_invariants(result: "CampaignResult") -> tuple[Violation, ...]:
    """Run every registered invariant; violations in (name, time) order."""
    violations: list[Violation] = []
    for name in sorted(INVARIANTS):
        violations.extend(INVARIANTS[name](result))
    return tuple(sorted(violations, key=lambda v: (v.invariant, v.at)))
