"""Replay one campaign against the chaos world and judge it.

The runner is the determinism keystone: a campaign names its seed, the
world is built from that seed, every random draw in the loop comes from a
seeded generator, and time only moves on the simulated clock — so
``run_campaign(c)`` twice produces byte-identical
:meth:`CampaignResult.report` dicts, which is what lets CI pin reports
and the minimizer trust that a replayed subset differs only by the
faults it removed.

Per tick (1 simulated second) the loop: opens a fresh admission window on
every PoP (the :class:`~repro.faults.gray.OverloadedPoP` capacity grain),
fires due injections/reversions, lets the health monitor probe, then
drives one fetch per client, sampling success and latency.  Invariants
are evaluated over the recorded stream at the end of the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dns.resolver import ResolveError
from ..faults.events import FaultTimeline
from ..faults.injector import FaultInjector
from ..netsim.addr import IPAddress
from ..netsim.speakers import oracle_mismatches
from .generator import Campaign
from .invariants import Violation, check_invariants
from .world import ChaosConfig, build_world

__all__ = ["ChaosTick", "FetchSample", "CampaignResult", "run_campaign"]


@dataclass(frozen=True, slots=True)
class ChaosTick:
    """One simulated second of client traffic."""

    t: float
    successes: int
    failures: int


@dataclass(frozen=True, slots=True)
class FetchSample:
    """One client fetch: who, when, how it went, and over which binding."""

    t: float
    client: str
    ok: bool
    coalesced: bool
    address: IPAddress | None
    latency_s: float
    error: str = ""
    #: Speakers mode: the forwarding path for this fetch traversed an AS
    #: with an active ``route_leak`` fault — production traffic riding a
    #: leaked route (the ``leak_containment`` invariant's raw signal).
    via_leaker: bool = False


@dataclass(slots=True)
class CampaignResult:
    """Everything a finished campaign run exposes to invariants/reports."""

    campaign: Campaign
    config: ChaosConfig
    ticks: tuple[ChaosTick, ...]
    fetches: tuple[FetchSample, ...]
    timeline: FaultTimeline
    cdn: object                      # live deployment, for stats invariants
    sheds: dict[str, int]            # per-PoP connections shed by capacity
    syn_drops: dict[str, int]        # per-PoP SYNs lost to ingress faults
    probes_run: int
    gray_rounds: int
    hedges_run: int
    detection_time: float            # first fault -> failover (inf: none)
    recovery_time: float             # first fault -> sustained success
    violations: tuple[Violation, ...] = field(default_factory=tuple)
    # -- speakers-mode extras (defaults keep static-mode reports identical) --
    routing: str = "static"
    convergence_windows: tuple[tuple[float, float], ...] = ()
    bgp: dict = field(default_factory=dict)      # ConvergenceTracker snapshot
    oracle_checked: bool = False
    oracle_mismatches: tuple = ()
    #: Re-addressing drills: the CampaignEngine's report dict.  ``None``
    #: on plain chaos runs (keeps their reports byte-identical and makes
    #: the campaign invariants no-ops).
    readdressing: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def availability(self) -> float:
        total = sum(s.successes + s.failures for s in self.ticks)
        if not total:
            return 1.0
        return sum(s.successes for s in self.ticks) / total

    @property
    def p99_latency_s(self) -> float:
        latencies = sorted(f.latency_s for f in self.fetches if f.ok)
        if not latencies:
            return 0.0
        return latencies[int(0.99 * (len(latencies) - 1))]

    def report(self) -> dict:
        """Deterministic JSON-able summary (byte-identical across runs)."""
        failover = self.timeline.first("failover_triggered")
        return {
            "campaign": self.campaign.name,
            "seed": self.campaign.seed,
            "faults": [spec.to_dict() for spec in self.campaign.faults],
            "availability": round(self.availability, 4),
            "p99_latency_ms": round(self.p99_latency_s * 1e3, 2),
            "sheds": sum(self.sheds.values()),
            "syn_drops": sum(self.syn_drops.values()),
            "failover_at": None if failover is None else failover.at,
            "detection_s": _finite(self.detection_time),
            "recovery_s": _finite(self.recovery_time),
            "probes": self.probes_run,
            "gray_rounds": self.gray_rounds,
            "hedges": self.hedges_run,
            "violations": [
                {"invariant": v.invariant, "at": v.at, "detail": v.detail}
                for v in self.violations
            ],
            "ok": self.ok,
            # Static-mode reports stay byte-identical to the pre-speakers
            # format; the routing section only appears for speaker runs.
            **(
                {
                    "routing": {
                        "mode": self.routing,
                        "convergence_windows": [
                            [round(opened, 3), round(closed, 3)]
                            for opened, closed in self.convergence_windows
                        ],
                        "bgp": {k: self.bgp[k] for k in sorted(self.bgp)},
                        "oracle_checked": self.oracle_checked,
                        "oracle_mismatches": [
                            list(row) for row in self.oracle_mismatches
                        ],
                        "leaked_fetches": sum(
                            1 for f in self.fetches if f.via_leaker
                        ),
                    }
                }
                if self.routing != "static"
                else {}
            ),
            # Likewise: the re-addressing section only appears when a
            # campaign engine actually drove the run.
            **(
                {"readdressing": self.readdressing}
                if self.readdressing is not None
                else {}
            ),
        }


def _finite(value: float) -> float | None:
    return None if value == float("inf") else round(value, 2)


def run_campaign(
    campaign: Campaign, base_config: ChaosConfig | None = None,
    *, world=None, campaign_engine=None,
) -> CampaignResult:
    """Deterministically replay ``campaign`` and evaluate every invariant.

    ``world`` lets a caller that already built (and instrumented) the
    chaos world reuse this loop; ``campaign_engine`` is the re-addressing
    hook — ticked right after the health monitor each second and fed the
    second's fetch tallies, exactly the contract
    :class:`~repro.campaign.engine.CampaignEngine` expects.
    """
    if world is None:
        config = (base_config or ChaosConfig()).apply(campaign.overrides)
        world = build_world(config, campaign.seed)
    else:
        config = world.config
    clock, cdn = world.clock, world.cdn
    sim = cdn.network.sim
    speakers = bool(getattr(sim, "incremental", False))
    injector = FaultInjector(
        clock, campaign.plan(), world.targets,
        rng=random.Random(campaign.seed + 2), timeline=world.timeline,
    )
    workload = random.Random(campaign.seed + 5)

    ticks: list[ChaosTick] = []
    fetches: list[FetchSample] = []
    while clock.now() < config.horizon:
        for dc_name in sorted(cdn.datacenters):
            cdn.datacenters[dc_name].begin_capacity_window()
        injector.tick()
        if speakers:
            sim.tick()  # deliver BGP updates due this second
        world.monitor.tick()
        if campaign_engine is not None:
            campaign_engine.tick()
        leakers = (
            [f.leaker for f in injector.active_faults() if f.kind == "route_leak"]
            if speakers else []
        )
        successes = failures = 0
        for asn, client in world.clients:
            site = workload.choice(world.universe.sites)
            t = clock.now()
            try:
                outcome = client.fetch(site)
            except (ConnectionRefusedError, ConnectionResetError, ResolveError) as exc:
                failures += 1
                fetches.append(FetchSample(
                    t, client.name, False, False, None, 0.0,
                    error=type(exc).__name__,
                ))
            else:
                successes += 1
                via_leaker = False
                if leakers:
                    path = sim.forwarding_path(asn, outcome.connection.remote_addr)
                    via_leaker = bool(path) and any(l in path for l in leakers)
                fetches.append(FetchSample(
                    t, client.name, True, outcome.coalesced,
                    outcome.connection.remote_addr, outcome.response.latency_s,
                    via_leaker=via_leaker,
                ))
        if campaign_engine is not None:
            campaign_engine.note_traffic(successes, failures)
        ticks.append(ChaosTick(clock.now(), successes, failures))
        clock.advance(1.0)

    first_fault = min((s.when for s in campaign.faults), default=0.0)
    failover = world.timeline.first("failover_triggered")
    detection_time = failover.at - first_fault if failover else float("inf")
    recovery_time = float("inf")
    post = [s for s in ticks if s.t >= first_fault]
    for i, sample in enumerate(post):
        if all(later.failures == 0 for later in post[i:]):
            recovery_time = sample.t - first_fault
            break

    convergence_windows: tuple[tuple[float, float], ...] = ()
    bgp: dict = {}
    oracle_checked = False
    mismatches: tuple = ()
    if speakers:
        tracker = sim.tracker
        windows = list(tracker.windows)
        opened = sim.open_window_since()
        if opened is not None:
            # Still converging at the horizon: close the window at the
            # horizon so the invariant sees an honest (pessimistic) bound.
            windows.append((opened, config.horizon))
        convergence_windows = tuple(windows)
        # The differential oracle only applies when the network can reach
        # the static fixpoint at all: any down session, suppressed route,
        # or live flap makes static's answer the wrong reference.
        applicable = (
            not sim.sessions_down()
            and not sim.active_flaps()
            and sim.suppressed_count() == 0
        )
        sim.settle()
        bgp = tracker.snapshot()
        if applicable:
            network = cdn.network
            addresses = sorted(
                (prefix.first for prefix in network.announced_prefixes()),
                key=str,
            )
            mismatches = tuple(oracle_mismatches(
                sim, sorted(network.client_ases(), key=str), addresses,
            ))
            oracle_checked = True

    result = CampaignResult(
        campaign=campaign,
        config=config,
        ticks=tuple(ticks),
        fetches=tuple(fetches),
        timeline=world.timeline,
        cdn=cdn,
        sheds={name: dc.sheds for name, dc in sorted(cdn.datacenters.items())},
        syn_drops={name: dc.syn_drops for name, dc in sorted(cdn.datacenters.items())},
        probes_run=world.monitor.probes_run,
        gray_rounds=world.monitor.gray_rounds,
        hedges_run=world.monitor.hedges_run,
        detection_time=detection_time,
        recovery_time=recovery_time,
        routing=config.routing,
        convergence_windows=convergence_windows,
        bgp=bgp,
        oracle_checked=oracle_checked,
        oracle_mismatches=mismatches,
    )
    if campaign_engine is not None:
        result.readdressing = campaign_engine.report()
    result.violations = check_invariants(result)
    return result
