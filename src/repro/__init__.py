"""repro — reproduction of "The Ties that un-Bind" (SIGCOMM 2021).

Addressing agility at CDN scale: policy-first randomized DNS answering
(``repro.core``), a programmable socket-lookup model (``repro.sockets``),
and the full simulated substrate they run on (``repro.netsim``,
``repro.dns``, ``repro.edge``, ``repro.web``, ``repro.workload``), plus the
agility-enabled systems of the paper's §6 (``repro.agility``).
"""

from .clock import Clock
from .deploy import Deployment, DeploymentConfig

__version__ = "1.0.0"
__all__ = ["Clock", "Deployment", "DeploymentConfig", "__version__"]
