"""One-call deployment assembly: the library's "just give me a CDN" API.

Every experiment, example, and downstream user repeats the same dance:
build a topology, a hostname universe, a CDN, announce pools, install
policies, wire client populations.  :class:`Deployment` packages that
dance behind a config dataclass while keeping every part swappable — the
underlying objects are all exposed.

    from repro.deploy import Deployment, DeploymentConfig

    dep = Deployment.build(DeploymentConfig(num_hostnames=500))
    client = dep.new_client("eyeball:us:0")
    client.fetch(dep.universe.site(0))
    dep.controller.set_active("default", parse_prefix("192.0.2.1/32"))
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field

from .clock import Clock
from .core.agility import AgilityController
from .core.authoritative import PolicyAnswerSource
from .core.policy import Policy, PolicyEngine
from .core.pool import AddressPool
from .core.spec import AttributeDomain, compile_and_verify
from .core.strategies import SelectionStrategy
from .dns.cache import TTLPolicy
from .dns.resolver import RecursiveResolver
from .dns.stub import StubResolver
from .edge.cdn import CDN
from .edge.server import ListenMode
from .netsim.addr import Prefix, parse_prefix
from .netsim.anycast import AnycastNetwork, build_regional_topology
from .web.client import BrowserClient
from .web.http import HTTPVersion
from .workload.hostnames import HostnameUniverse, UniverseConfig

__all__ = ["DeploymentConfig", "Deployment"]


@dataclass(frozen=True, slots=True)
class DeploymentConfig:
    """Everything needed to stand up a deployment, with paper-ish defaults."""

    regions: dict[str, list[str]] = field(
        default_factory=lambda: {"us": ["ashburn"], "eu": ["london"]}
    )
    clients_per_region: int = 6
    servers_per_dc: int = 3
    num_hostnames: int = 200
    assets_per_site: int = 2
    advertised: str = "192.0.0.0/20"
    active: str | None = None          # None = full advertisement
    backup: str | None = "203.0.113.0/24"
    ports: tuple[int, ...] = (80, 443)
    listen_mode: str = ListenMode.SK_LOOKUP
    ttl: int = 30
    policy_name: str = "default"
    seed: int = 1
    #: Run the control-plane checker before every rebind manoeuvre and
    #: *refuse* (raise :class:`~repro.check.core.CheckError`) on error
    #: findings — the attach-time-verifier discipline applied to the
    #: control plane.  Default (False) logs instead of raising.
    strict_checks: bool = False

    def __post_init__(self) -> None:
        if self.listen_mode not in ListenMode.ALL:
            raise ValueError(f"unknown listen mode {self.listen_mode!r}")
        if not self.regions:
            raise ValueError("need at least one region")


class Deployment:
    """A fully wired CDN: network, universe, policies, controller."""

    def __init__(
        self,
        config: DeploymentConfig,
        clock: Clock,
        network: AnycastNetwork,
        universe: HostnameUniverse,
        cdn: CDN,
        engine: PolicyEngine,
        pool: AddressPool,
        backup_pool: AddressPool | None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.network = network
        self.universe = universe
        self.cdn = cdn
        self.engine = engine
        self.pool = pool
        self.backup_pool = backup_pool
        self.controller = AgilityController(engine, clock)
        self._client_counter = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: DeploymentConfig | None = None,
        strategy: SelectionStrategy | None = None,
    ) -> "Deployment":
        config = config or DeploymentConfig()
        clock = Clock()
        universe = HostnameUniverse(UniverseConfig(
            num_hostnames=config.num_hostnames,
            assets_per_site=config.assets_per_site,
            seed=config.seed,
        ))
        network = build_regional_topology(
            config.regions,
            clients_per_region=config.clients_per_region,
            rng=random.Random(config.seed),
        )
        cdn = CDN(network, universe.registry, universe.origins,
                  servers_per_dc=config.servers_per_dc)
        cdn.provision_certificates()

        advertised = parse_prefix(config.advertised)
        cdn.announce_pool(advertised, ports=config.ports, mode=config.listen_mode)
        backup_pool = None
        if config.backup is not None:
            backup_prefix = parse_prefix(config.backup)
            cdn.announce_pool(backup_prefix, ports=config.ports, mode=config.listen_mode)
            backup_pool = AddressPool(backup_prefix, name="backup")

        pool = AddressPool(
            advertised,
            active=parse_prefix(config.active) if config.active else None,
            name=f"{config.policy_name}-pool",
        )
        engine = PolicyEngine(random.Random(config.seed + 1))
        policy = Policy(config.policy_name, pool, ttl=config.ttl,
                        strategy=strategy) if strategy else Policy(
            config.policy_name, pool, ttl=config.ttl)
        engine.add(policy)
        cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))
        return cls(config, clock, network, universe, cdn, engine, pool, backup_pool)

    @classmethod
    def from_specs(
        cls,
        specs: list[dict],
        config: DeploymentConfig | None = None,
    ) -> "Deployment":
        """Build with a verified declarative policy set instead of the
        default single catch-all policy (see :mod:`repro.core.spec`)."""
        config = config or DeploymentConfig()
        deployment = cls.build(config)
        domain = AttributeDomain(pops=frozenset(deployment.cdn.pop_names()))
        advertised_space = [parse_prefix(config.advertised)]
        if config.backup:
            advertised_space.append(parse_prefix(config.backup))
        engine = compile_and_verify(specs, domain, advertised_space)
        deployment.engine = engine
        deployment.controller = AgilityController(engine, deployment.clock)
        deployment.cdn.set_answer_source(
            PolicyAnswerSource(engine, deployment.universe.registry)
        )
        return deployment

    # -- client factory --------------------------------------------------------

    def eyeballs(self) -> list[object]:
        return [a for a in self.network.client_ases() if str(a).startswith("eyeball")]

    def new_client(
        self,
        asn: object,
        version: HTTPVersion = HTTPVersion.H2,
        ttl_policy: TTLPolicy | None = None,
        resolver_asn: object | None = None,
    ) -> BrowserClient:
        """A browser attached at ``asn`` (resolver there too, unless told
        otherwise — pass ``resolver_asn`` to model the §6 mismatch)."""
        self._client_counter += 1
        tag = f"{asn}-{self._client_counter}"
        resolver = RecursiveResolver(
            f"res-{tag}", self.clock,
            transport=self.cdn.dns_transport(resolver_asn if resolver_asn is not None else asn),
            tcp_transport=self.cdn.dns_transport(
                resolver_asn if resolver_asn is not None else asn, protocol="tcp"
            ),
            ttl_policy=ttl_policy,
            asn=resolver_asn if resolver_asn is not None else asn,
        )
        stub = StubResolver(f"stub-{tag}", self.clock, resolver)
        return BrowserClient(f"client-{tag}", stub, self.cdn.transport_for(asn),
                             version=version)

    # -- static analysis ---------------------------------------------------------

    def check(self, lint: bool = False):
        """Run the static-analysis passes over this deployment.

        Returns the :class:`~repro.check.core.Report`; ``lint=True`` also
        runs the determinism lint over the installed ``repro`` sources.
        """
        from .check.cli import _default_lint_paths
        from .check.core import run_checkers
        from .check.deployment import context_from_deployment

        ctx = context_from_deployment(self)
        if lint:
            ctx.lint_paths = _default_lint_paths()
        return run_checkers(ctx)

    def _precheck_rebind(self, candidate_pool: AddressPool) -> None:
        """Verify the control plane as it would be *after* a rebind.

        Strict mode refuses the manoeuvre (raises ``CheckError``) when the
        candidate pool would mint unroutable or undispatched addresses;
        otherwise error findings are logged and the caller proceeds.
        """
        from .check.core import CheckError
        from .check.deployment import precheck_rebind

        report = precheck_rebind(
            self.cdn, self.engine, self.config.policy_name, candidate_pool,
            standby_pools=[
                p for p in (self.backup_pool,)
                if p is not None and p is not candidate_pool
            ],
            service_ports=tuple(self.config.ports),
            deployment=self,
            symbolic=True,
        )
        if report.ok:
            return
        rendered = report.render()
        if self.config.strict_checks:
            raise CheckError(
                f"rebind of {self.config.policy_name!r} to "
                f"{candidate_pool.name or candidate_pool.advertised} rejected:\n"
                f"{rendered}",
                report.errors,
            )
        logging.getLogger("repro.check").warning(
            "rebind precheck found errors (proceeding; set strict_checks "
            "to refuse):\n%s", rendered,
        )

    # -- common manoeuvres -------------------------------------------------------

    def shrink_active(self, active: "str | Prefix"):
        """The §4.2 timetable move: narrow the in-use set, one call."""
        from .check.plan import PlanError

        prefix = parse_prefix(active) if isinstance(active, str) else active
        current = self.engine.get(self.config.policy_name).pool
        if (prefix.family != current.advertised.family
                or not current.advertised.contains(prefix)):
            raise PlanError(
                f"shrink target {prefix} is not derived from the current "
                f"pool {current.advertised} (policy "
                f"{self.config.policy_name!r})"
            )
        self._precheck_rebind(AddressPool(
            current.advertised, active=prefix, name=current.name,
        ))
        return self.controller.set_active(self.config.policy_name, prefix)

    def failover_to_backup(self):
        """The §6 mitigation move: keep the policy, change the prefix."""
        from .check.plan import PlanError

        if self.backup_pool is None:
            raise RuntimeError("deployment was built without a backup prefix")
        current = self.engine.get(self.config.policy_name).pool
        backup = self.backup_pool.advertised
        if backup.family != current.advertised.family:
            raise PlanError(
                f"backup pool {backup} and current pool {current.advertised} "
                "differ in address family"
            )
        if backup.overlaps(current.advertised):
            raise PlanError(
                f"backup pool {backup} overlaps the current pool "
                f"{current.advertised} — a failover must move to disjoint "
                "space, not back into the failed one"
            )
        self._precheck_rebind(self.backup_pool)
        return self.controller.swap_pool(self.config.policy_name, self.backup_pool)
