"""Per-address load distribution statistics — the Figure 7 measurements.

Figure 7 plots requests-per-IP and bytes-per-IP sorted descending and
reads off the spread: "~4–6 orders of magnitude" pre-agility, "less than
2 and 3 orders" for a random /20, "factor of less than 2 in absolute
terms" for a random /24.  :class:`LoadDistribution` computes exactly those
figures plus standard inequality measures (Gini, coefficient of
variation) used in the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pool import AddressPool
from ..edge.datacenter import TrafficLog

__all__ = ["LoadDistribution", "pool_load", "spread_orders"]


def spread_orders(values) -> float:
    """log10(max / min) over the positive entries; 0 for degenerate input."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.log10(arr.max() / arr.min()))


@dataclass(frozen=True, slots=True)
class LoadDistribution:
    """Summary of one per-address load series (requests or bytes)."""

    sorted_desc: tuple[float, ...]
    zeros: int

    @classmethod
    def from_counts(cls, counts, include_zeros: bool = True) -> "LoadDistribution":
        arr = sorted((float(c) for c in counts), reverse=True)
        zeros = sum(1 for c in arr if c == 0)
        if not include_zeros:
            arr = [c for c in arr if c > 0]
        return cls(sorted_desc=tuple(arr), zeros=zeros)

    # -- headline Figure 7 numbers ------------------------------------------

    @property
    def spread_orders_of_magnitude(self) -> float:
        """log10 of max/min over addresses that saw any traffic."""
        return spread_orders(self.sorted_desc)

    @property
    def max_min_factor(self) -> float:
        """max/min over loaded addresses (the /24 result is "factor < 2")."""
        positive = [c for c in self.sorted_desc if c > 0]
        if not positive:
            return 0.0
        return positive[0] / positive[-1]

    # -- general inequality measures --------------------------------------------

    @property
    def total(self) -> float:
        return float(sum(self.sorted_desc))

    @property
    def mean(self) -> float:
        return self.total / len(self.sorted_desc) if self.sorted_desc else 0.0

    @property
    def cv(self) -> float:
        """Coefficient of variation (σ/μ): 0 = perfectly uniform."""
        if not self.sorted_desc or self.mean == 0:
            return 0.0
        arr = np.asarray(self.sorted_desc)
        return float(arr.std() / arr.mean())

    @property
    def gini(self) -> float:
        """Gini coefficient: 0 = uniform, →1 = all load on one address."""
        arr = np.sort(np.asarray(self.sorted_desc, dtype=np.float64))
        n = arr.size
        if n == 0 or arr.sum() == 0:
            return 0.0
        index = np.arange(1, n + 1)
        return float((2 * (index * arr).sum() - (n + 1) * arr.sum()) / (n * arr.sum()))

    @property
    def loaded_addresses(self) -> int:
        return len(self.sorted_desc) - self.zeros

    def percentile(self, q: float) -> float:
        if not self.sorted_desc:
            return 0.0
        return float(np.percentile(np.asarray(self.sorted_desc), q))

    def head_share(self, top: int) -> float:
        """Traffic share of the ``top`` most loaded addresses."""
        if self.total == 0:
            return 0.0
        return sum(self.sorted_desc[:top]) / self.total

    def summary(self) -> dict[str, float]:
        return {
            "addresses": float(len(self.sorted_desc)),
            "loaded": float(self.loaded_addresses),
            "total": self.total,
            "max": self.sorted_desc[0] if self.sorted_desc else 0.0,
            "spread_orders": self.spread_orders_of_magnitude,
            "max_min_factor": self.max_min_factor,
            "gini": self.gini,
            "cv": self.cv,
        }


def pool_load(log: TrafficLog, pool: AddressPool, metric: str = "requests") -> LoadDistribution:
    """Load over *every* active pool address (unhit addresses count zero).

    Figure 7's x-axis is "IP addresses sorted by load": addresses that
    never appeared still exist in the pool and belong in the series (they
    are why the pre-agility plots reach down so far).
    """
    if metric not in ("requests", "bytes", "connections"):
        raise ValueError(f"unknown metric {metric!r}")
    by_addr = log.by_address()
    counts: list[float] = []
    if pool.active_prefix is not None and pool.size > (1 << 20):
        raise ValueError("pool too wide to enumerate; narrow the active set")
    for i in range(pool.size):
        address = pool.address_at(i)
        traffic = by_addr.get(address)
        counts.append(float(getattr(traffic, metric)) if traffic else 0.0)
    return LoadDistribution.from_counts(counts)
