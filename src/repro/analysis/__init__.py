"""Analysis: load distributions, statistical tests, and report rendering."""

from .loadstats import LoadDistribution, pool_load, spread_orders
from .reporting import ExperimentRecord, TextTable, format_quantity
from .stats import ADResult, anderson_darling_2sample, cdf_at, ecdf

__all__ = [
    "LoadDistribution",
    "pool_load",
    "spread_orders",
    "ExperimentRecord",
    "TextTable",
    "format_quantity",
    "ADResult",
    "anderson_darling_2sample",
    "cdf_at",
    "ecdf",
]
