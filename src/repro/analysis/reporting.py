"""Plain-text tables and experiment records for the benchmark harness.

Every bench prints "the same rows/series the paper reports" through these
helpers, and appends an :class:`ExperimentRecord` so EXPERIMENTS.md can be
regenerated from measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TextTable", "ExperimentRecord", "format_quantity"]


def format_quantity(value: float, precision: int = 1) -> str:
    """Human-scale numbers: 1234567 → '1.2M'."""
    if value != value:  # NaN
        return "nan"
    negative = value < 0
    v = abs(value)
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if v >= threshold:
            out = f"{v / threshold:.{precision}f}{suffix}"
            return f"-{out}" if negative else out
    if v == int(v):
        out = str(int(v))
    else:
        out = f"{v:.{precision}f}"
    return f"-{out}" if negative else out


class TextTable:
    """A fixed-column ASCII table with a title, printed by benches."""

    def __init__(self, title: str, columns: list[str]) -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self._rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)), header, sep]
        for row in self._rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass(slots=True)
class ExperimentRecord:
    """Paper-vs-measured bookkeeping for one experiment artefact."""

    experiment_id: str
    artefact: str                 # e.g. "Figure 7b"
    paper_claim: str
    measured: dict[str, object] = field(default_factory=dict)
    holds: bool | None = None
    notes: str = ""

    def set(self, key: str, value: object) -> None:
        self.measured[key] = value

    def verdict(self, holds: bool, notes: str = "") -> None:
        self.holds = holds
        if notes:
            self.notes = notes

    def render(self) -> str:
        status = {True: "HOLDS", False: "DIVERGES", None: "UNEVALUATED"}[self.holds]
        lines = [
            f"[{self.experiment_id}] {self.artefact} — {status}",
            f"  paper:    {self.paper_claim}",
        ]
        for key, value in self.measured.items():
            lines.append(f"  measured: {key} = {value}")
        if self.notes:
            lines.append(f"  notes:    {self.notes}")
        return "\n".join(lines)
