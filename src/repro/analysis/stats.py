"""Statistical tests and distribution utilities used by the evaluation.

Figure 8's claim is statistical: "a 2-sample Anderson–Darling test
suggests a significant difference … the hypothesis can be rejected with
99.9 % confidence since the returned test value AD = 3532.4 is higher than
the critical value ADcrit = 6.546 for significance level of 0.001."  The
wrapper here reproduces that exact reporting shape via
:func:`scipy.stats.anderson_ksamp`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["ADResult", "anderson_darling_2sample", "ecdf", "cdf_at"]

#: scipy's anderson_ksamp critical values correspond to these levels.
_AD_LEVELS = (0.25, 0.10, 0.05, 0.025, 0.01, 0.005, 0.001)


@dataclass(frozen=True, slots=True)
class ADResult:
    """Anderson–Darling k-sample outcome, paper-style."""

    statistic: float
    critical_values: tuple[float, ...]
    significance_levels: tuple[float, ...] = _AD_LEVELS

    def critical_at(self, level: float) -> float:
        try:
            index = self.significance_levels.index(level)
        except ValueError as exc:
            raise ValueError(f"no critical value tabulated for level {level}") from exc
        return self.critical_values[index]

    def rejects_same_population(self, level: float = 0.001) -> bool:
        """True when the same-population hypothesis is rejected at ``level``."""
        return self.statistic > self.critical_at(level)

    def report(self, level: float = 0.001) -> str:
        crit = self.critical_at(level)
        verdict = "rejected" if self.statistic > crit else "not rejected"
        return (
            f"AD = {self.statistic:.1f} vs ADcrit = {crit:.3f} at α = {level}: "
            f"same-population hypothesis {verdict}"
        )


def anderson_darling_2sample(a, b) -> ADResult:
    """2-sample Anderson–Darling test (Scholz & Stephens 1987)."""
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("each sample needs at least 2 observations")
    with warnings.catch_warnings():
        # scipy warns when the statistic is outside the tabulated p range —
        # expected here: the paper's statistic (3532) is far off-table too.
        warnings.simplefilter("ignore")
        result = _scipy_stats.anderson_ksamp([a, b])
    return ADResult(
        statistic=float(result.statistic),
        critical_values=tuple(float(c) for c in result.critical_values),
    )


def ecdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted x, P[X ≤ x])."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    y = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, y


def cdf_at(values, x: float) -> float:
    """P[X ≤ x] under the empirical distribution of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float((arr <= x).mean())
