"""Typed errors for the fault subsystem.

Misconfigured chaos is worse than no chaos: a ``drop=1.3`` silently clamps
(or worse, doesn't) and the campaign "passes" while testing nothing.  All
configuration mistakes raise :class:`FaultConfigError` at construction
time, never at injection time.
"""

from __future__ import annotations

__all__ = ["FaultError", "FaultConfigError", "UnknownFaultKindError"]


class FaultError(Exception):
    """Base class for fault-subsystem errors."""


class FaultConfigError(FaultError, ValueError):
    """A fault was configured with out-of-range or inconsistent parameters."""


class UnknownFaultKindError(FaultError, KeyError):
    """A campaign named a fault kind no registered factory builds."""
