"""Routing gray faults: leaks, session resets, slow convergence, flapping.

These are the failure modes the paper's §6 incident taxonomy describes at
the *routing* layer — the ones a static fixpoint engine cannot express in
time.  ``route_leak`` works against either BGP engine (on the static one it
recomputes the fixpoint, matching the legacy
:func:`~repro.netsim.routeleak.inject_route_leak` behaviour); the other
three need the event-driven :class:`~repro.netsim.speakers.SpeakerSimulation`
and raise :class:`~repro.faults.errors.FaultConfigError` when the world is
running the static engine, so a campaign that cannot be faithfully executed
fails at build time rather than silently measuring nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.addr import Prefix
from ..netsim.bgp import BGPSimulation, LeakingExport
from .errors import FaultConfigError
from .injector import Fault, FaultTargets

__all__ = ["RouteLeak", "SessionReset", "SlowConvergence", "PersistentFlap"]


def _network_sim(targets: FaultTargets) -> BGPSimulation:
    return targets.require_network().sim


def _require_speakers(targets: FaultTargets, kind: str):
    sim = _network_sim(targets)
    if not getattr(sim, "incremental", False):
        raise FaultConfigError(
            f"fault {kind!r} needs the event-driven speaker substrate "
            "(routing='speakers'); the static engine cannot express it"
        )
    return sim


@dataclass(slots=True)
class RouteLeak(Fault):
    """Flip ``leaker``'s export policy to leak ``prefix`` (Figure 9's AS3).

    On the speaker substrate the leak then *propagates* — transit by
    transit, MRAI slot by MRAI slot — and the ``leak_containment``
    invariant measures how long leaked routes carry production traffic.
    """

    leaker: object
    prefix: Prefix
    kind: str = "route_leak"

    @property
    def target(self) -> str:
        return f"{self.leaker}:{self.prefix}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _network_sim(targets)
        if self.leaker not in targets.require_network().graph:
            raise KeyError(f"unknown AS {self.leaker!r}")
        sim.set_export_policy(self.leaker, LeakingExport([self.prefix]))
        if not getattr(sim, "incremental", False):
            sim.reconverge_from_scratch()
        return f"{self.leaker} leaking {self.prefix} past valley-free export"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _network_sim(targets)
        sim.set_export_policy(self.leaker, None)
        if not getattr(sim, "incremental", False):
            sim.reconverge_from_scratch()
        return f"{self.leaker} export policy restored"


@dataclass(slots=True)
class SessionReset(Fault):
    """Tear down the BGP session between two adjacent ASes.

    Both sides drop everything learned over the session and re-advertise on
    revert — the convergence the network pays twice is the observable.
    """

    a: object
    b: object
    kind: str = "session_reset"

    @property
    def target(self) -> str:
        return f"{self.a}<->{self.b}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _require_speakers(targets, self.kind)
        sim.set_session(self.a, self.b, up=False)
        return f"session {self.a}<->{self.b} down"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _require_speakers(targets, self.kind)
        sim.set_session(self.a, self.b, up=True)
        return f"session {self.a}<->{self.b} re-established"


@dataclass(slots=True)
class SlowConvergence(Fault):
    """Scale every link's propagation delay by ``factor``.

    The gray-failure flavour of routing trouble: nothing is *down*, updates
    just take several times longer to spread, widening every convergence
    window that overlaps the fault.
    """

    factor: float = 5.0
    kind: str = "slow_convergence"
    _saved: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise FaultConfigError(
                f"slow_convergence factor must exceed 1.0, got {self.factor}"
            )

    @property
    def target(self) -> str:
        return f"x{self.factor:g}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _require_speakers(targets, self.kind)
        self._saved = sim.delay_factor
        sim.delay_factor = self._saved * self.factor
        return f"propagation delays scaled x{self.factor:g}"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _require_speakers(targets, self.kind)
        sim.delay_factor = self._saved
        return "propagation delays restored"


@dataclass(slots=True)
class PersistentFlap(Fault):
    """Flap a prefix's origination at one PoP until reverted.

    Each half-``period`` the origin toggles announce/withdraw.  Upstream
    speakers accumulate damping penalty and eventually suppress the
    flapping route — RFC 2439's containment, observable as ``suppressions``
    in the tracker.  Reverting stops the flap and leaves the prefix
    announced.
    """

    prefix: Prefix
    pop: str
    period: float = 6.0
    kind: str = "persistent_flap"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise FaultConfigError(f"flap period must be positive, got {self.period}")

    @property
    def target(self) -> str:
        return f"{self.pop}:{self.prefix}"

    @property
    def _origin(self) -> str:
        return f"pop:{self.pop}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _require_speakers(targets, self.kind)
        sim.start_flap(self.prefix, self._origin, self.period)
        return f"{self.pop} flapping {self.prefix} every {self.period:g}s"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        sim = _require_speakers(targets, self.kind)
        sim.stop_flap(self.prefix, self._origin)
        return f"{self.pop} flap stopped, {self.prefix} re-announced"
