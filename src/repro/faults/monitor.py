"""Failure-aware control plane: probe PoPs, detect blackholes, rebind.

The paper's robustness claim (§3.4, §6) is that when addresses stop
working — a PoP fails, a prefix is leaked or attacked — the operator
*rebinds* at DNS-TTL timescales instead of waiting out BGP convergence.
This module closes that loop: a :class:`HealthMonitor` periodically probes
the service through the full simulated data path (policy DNS answer →
anycast route → TLS handshake → HTTP response) from a set of vantage ASes,
and after a configurable run of consecutive failures drives the
:class:`~repro.core.agility.AgilityController` to drain the affected pool
(``swap_pool`` to a pre-advertised standby, the §6 mitigation move).

End-to-end recovery is then bounded by ``detection + TTL``: detection
takes at most ``failure_threshold × probe_interval``, and downstream
caches age out the dead addresses within one TTL of the swap — the
``max(connection lifetime, TTL)`` bound of §4.4, measured by
:mod:`repro.experiments.failover`.
"""

from __future__ import annotations

import logging
import random
from collections import deque
from dataclasses import dataclass

from ..clock import Clock
from ..core.agility import AgilityController
from ..core.pool import AddressPool
from ..dns.resolver import RecursiveResolver, ResolveError
from ..edge.cdn import CDN
from ..netsim.addr import IPAddress
from ..obs.trace import TraceRecorder
from ..web.http import HTTPVersion, Request
from ..web.tls import ClientHello, TLSError
from .events import FaultTimeline

__all__ = ["ProbeResult", "HealthMonitor"]


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """One end-to-end probe: DNS answer + data-path fetch from a vantage."""

    at: float
    vantage: object
    address: IPAddress | None  # the answer probed (None: DNS itself failed)
    pop: str | None            # catchment PoP for that address (None: blackhole)
    ok: bool
    detail: str = ""
    #: End-to-end probe time, simulated seconds: DNS path time (delays,
    #: timeouts) plus the server's service time.  The gray-failure signal —
    #: an ``ok=True`` probe can still be ten times slower than baseline.
    latency_s: float = 0.0


class HealthMonitor:
    """Synthetic monitoring + automatic pool drain.

    Parameters
    ----------
    vantages:
        Client ASes to probe from — pick at least one per region so a
        regional blackhole is visible from inside the region.
    failover_pool:
        The standby :class:`AddressPool` (already advertised and
        listening, like the §6 backup prefix).  ``None`` makes the
        monitor observe-only.
    failure_threshold:
        Consecutive failed probe rounds (any vantage failing fails the
        round) before the failover fires.  1 = act on first blood.
    latency_factor / gray_threshold / latency_window / min_latency_samples:
        Gray-failure detection.  Successful probes feed a rolling latency
        window (``latency_window`` samples); the baseline is the median
        after ejecting the slowest eighth (outlier ejection, so one slow
        box never poisons it).  A probe slower than ``latency_factor`` ×
        baseline is *slow*; a round where **every** vantage stays slow even
        after a hedged re-probe is a *gray round*; ``gray_threshold``
        consecutive gray rounds drain the pool exactly like a blackhole
        would — the slow PoP is rebound away *before* it ever fails a
        probe outright.  ``latency_factor=0`` disables gray detection.
    hedged_probes:
        Re-probe a slow vantage once and keep the faster of the pair.  A
        single slow server behind ECMP is absorbed by the hedge (the
        re-probe usually lands elsewhere); a PoP-wide slowdown is not —
        which is the distinction between noise and incident.
    strict_checks:
        Run the control-plane checker against the post-swap state before
        enacting the failover.  ``False`` (default) logs and records a
        timeline event on error findings but still swaps — availability
        over purity, a monitor must not deadlock the mitigation; ``True``
        refuses the swap with :class:`~repro.check.core.CheckError`.
    detect_routing / routing_threshold:
        Routing-aware detection for worlds running the event-driven BGP
        speakers.  The monitor learns each vantage's *baseline* catchment
        PoP from its first healthy probe; a probe that still succeeds but
        lands on a different PoP is *rerouted* (catchment churn — a leak,
        a withdrawal mid-convergence).  ``routing_threshold`` consecutive
        rounds with at least one rerouted vantage drain the pool with
        ``reason="routing"``; and when probes outright *fail* but every
        failing vantage's catchment has shifted from baseline, the
        failover is attributed to routing rather than server health.
        Disabled by default: the static BGP engine flips catchments
        instantaneously and deliberately, so churn there is signal-free.
    """

    def __init__(
        self,
        cdn: CDN,
        clock: Clock,
        controller: AgilityController,
        policy_name: str,
        probe_hostname: str,
        vantages: list[object],
        failover_pool: AddressPool | None = None,
        probe_interval: float = 5.0,
        failure_threshold: int = 2,
        timeline: FaultTimeline | None = None,
        rng: random.Random | None = None,
        strict_checks: bool = False,
        tracer: TraceRecorder | None = None,
        latency_factor: float = 3.0,
        gray_threshold: int = 2,
        latency_window: int = 16,
        min_latency_samples: int = 4,
        hedged_probes: bool = True,
        detect_routing: bool = False,
        routing_threshold: int = 2,
    ) -> None:
        if not vantages:
            raise ValueError("health monitoring needs at least one vantage AS")
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if latency_factor < 0:
            raise ValueError("latency_factor must be non-negative (0 disables)")
        if gray_threshold < 1:
            raise ValueError("gray_threshold must be at least 1")
        if min_latency_samples < 1 or latency_window < min_latency_samples:
            raise ValueError("latency_window must hold at least min_latency_samples")
        if routing_threshold < 1:
            raise ValueError("routing_threshold must be at least 1")
        self.cdn = cdn
        self.clock = clock
        self.controller = controller
        self.policy_name = policy_name
        self.probe_hostname = probe_hostname
        self.vantages = list(vantages)
        self.failover_pool = failover_pool
        self.probe_interval = probe_interval
        self.failure_threshold = failure_threshold
        self.timeline = timeline if timeline is not None else FaultTimeline()
        self.strict_checks = strict_checks
        self.tracer = tracer
        #: Trace id of the most recent failover's span group ("detect" /
        #: "precheck" / "rebind"); scenarios append their own "recover"
        #: span to the same trace once they can see recovery.
        self.last_failover_trace: str | None = None
        self._rng = rng or random.Random(0x4EA1)
        self.latency_factor = latency_factor
        self.gray_threshold = gray_threshold
        self.min_latency_samples = min_latency_samples
        self.hedged_probes = hedged_probes
        self.detect_routing = detect_routing
        self.routing_threshold = routing_threshold
        self.consecutive_failures = 0
        self.consecutive_gray = 0
        self.consecutive_rerouted = 0
        self.failed_over = False
        self.probes_run = 0
        self.hedges_run = 0
        self.gray_rounds = 0
        self.reroute_rounds = 0
        #: First healthy catchment PoP seen per vantage — the "where this
        #: vantage's packets are supposed to land" reference for churn.
        self._baseline_pops: dict[object, str] = {}
        #: In-flight hedge state: vantages whose *previous* judged round
        #: stayed slow even after the hedged re-probe.  The hedge is one
        #: second opinion per episode — a latched vantage is not re-hedged
        #: while its slowness persists; a healthy round unlatches it.
        self._hedge_confirmed: set[object] = set()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._first_failure_at: float | None = None
        self._next_probe_at: float | None = None  # None: probe on first tick

    # -- probing -------------------------------------------------------------

    def probe_from(self, vantage: object) -> ProbeResult:
        """One full-path probe: fresh resolver (no cache — synthetic
        monitors must see the *current* answer), then a real fetch."""
        now = self.clock.now()
        resolver = RecursiveResolver(
            f"probe-{vantage}-{self.probes_run}",
            self.clock,
            self.cdn.dns_transport(vantage),
            tcp_transport=self.cdn.dns_transport(vantage, protocol="tcp"),
            rng=random.Random(self._rng.getrandbits(32)),
        )
        try:
            addresses = resolver.resolve_addresses(self.probe_hostname)
        except ResolveError as exc:
            return ProbeResult(now, vantage, None, None, False, f"dns: {exc}",
                               latency_s=self.clock.now() - now)
        if not addresses:
            return ProbeResult(now, vantage, None, None, False, "dns: empty answer",
                               latency_s=self.clock.now() - now)
        address = addresses[0]
        pop = self.cdn.network.pop_for(vantage, address)
        transport = self.cdn.transport_for(vantage)
        try:
            connection = transport.handshake(
                f"probe-{vantage}", address, 443,
                ClientHello(sni=self.probe_hostname), HTTPVersion.H2,
            )
            response = transport.serve(
                connection, Request(authority=self.probe_hostname, path="/")
            )
        except (ConnectionRefusedError, ConnectionResetError, TLSError) as exc:
            return ProbeResult(now, vantage, address, pop, False, f"data path: {exc}",
                               latency_s=self.clock.now() - now)
        latency = (self.clock.now() - now) + response.latency_s
        return ProbeResult(now, vantage, address, pop, True, latency_s=latency)

    def probe_round(self) -> list[ProbeResult]:
        """Probe every vantage once and react; returns the results."""
        self.probes_run += 1
        results = [self.probe_from(v) for v in self.vantages]
        failures = [r for r in results if not r.ok]
        rerouted = self._note_catchments(results)
        for r in failures:
            self.timeline.emit(
                r.at, "probe_failed", str(r.vantage),
                f"{r.address} via {r.pop}: {r.detail}", phase="observe",
            )
        if failures:
            if self.consecutive_failures == 0:
                self._first_failure_at = failures[0].at
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                # When every failing vantage's catchment has shifted from
                # its learned baseline, routing churn — not server health —
                # explains the failures.
                reason = (
                    "routing"
                    if self.detect_routing and failures
                    and all(self._is_rerouted(r) for r in failures)
                    else "blackhole"
                )
                self._trigger_failover(failures, reason=reason)
        else:
            if self.consecutive_failures:
                self.timeline.emit(
                    self.clock.now(), "probe_recovered", self.policy_name,
                    phase="observe",
                )
            self.consecutive_failures = 0
            self._first_failure_at = None
            self._observe_reroutes(rerouted)
            self._observe_latencies(results)
        return results

    # -- routing-aware detection ----------------------------------------------

    def _is_rerouted(self, result: ProbeResult) -> bool:
        baseline = self._baseline_pops.get(result.vantage)
        return baseline is not None and result.pop != baseline

    def _note_catchments(self, results: list[ProbeResult]) -> list[ProbeResult]:
        """Learn first-seen baselines; return this round's rerouted probes."""
        if not self.detect_routing:
            return []
        rerouted: list[ProbeResult] = []
        for r in results:
            baseline = self._baseline_pops.get(r.vantage)
            if baseline is None:
                if r.ok and r.pop is not None:
                    self._baseline_pops[r.vantage] = r.pop
                continue
            if r.pop != baseline:
                rerouted.append(r)
                self.timeline.emit(
                    r.at, "probe_rerouted", str(r.vantage),
                    f"{r.address} now via {r.pop or 'blackhole'}, "
                    f"baseline {baseline}", phase="observe",
                )
        return rerouted

    def _observe_reroutes(self, rerouted: list[ProbeResult]) -> None:
        """Healthy-round churn: probes succeed but land on the wrong PoP.

        This is the leak signature — a :class:`LeakingExport` AS pulls a
        vantage cross-region and the probe still *works*, just via the
        wrong catchment — so it must drain the pool on its own, without
        waiting for anything to fail.
        """
        if not self.detect_routing or self.failed_over:
            return
        if rerouted:
            self.reroute_rounds += 1
            if self.consecutive_rerouted == 0:
                self._first_failure_at = rerouted[0].at
            self.consecutive_rerouted += 1
            if self.consecutive_rerouted >= self.routing_threshold:
                self.timeline.emit(
                    self.clock.now(), "routing_churn_detected", self.policy_name,
                    f"{len(rerouted)} vantage(s) rerouted, "
                    f"{self.consecutive_rerouted} consecutive rounds",
                    phase="observe",
                )
                self._trigger_failover(rerouted, reason="routing")
        else:
            self.consecutive_rerouted = 0

    def latency_baseline(self) -> float | None:
        """Median of the latency window after ejecting the slowest eighth.

        ``None`` until ``min_latency_samples`` healthy probes have been
        seen — the monitor never judges slowness against an empty or
        still-warming baseline.  Outlier ejection keeps one chronically
        slow vantage from dragging the baseline up until slow looks
        normal (the classic gray-failure masking bug).
        """
        if len(self._latencies) < self.min_latency_samples:
            return None
        ordered = sorted(self._latencies)
        keep = ordered[: len(ordered) - len(ordered) // 8] or ordered
        return keep[len(keep) // 2]

    def _observe_latencies(self, results: list[ProbeResult]) -> None:
        """Gray-failure detection over an all-ok probe round.

        A probe slower than ``latency_factor × baseline`` is re-probed
        once (the hedge); if the pair's best time is still slow the
        vantage counts as *slow* this round.  Only a round where every
        vantage is slow is a gray round — pop-wide degradation, not one
        bad path — and ``gray_threshold`` consecutive gray rounds drain
        the pool through the same failover path a blackhole takes.
        """
        if self.latency_factor <= 0 or self.failed_over:
            for r in results:
                self._latencies.append(r.latency_s)
            return
        baseline = self.latency_baseline()
        if baseline is None or baseline <= 0:
            for r in results:
                self._latencies.append(r.latency_s)
            return
        threshold = baseline * self.latency_factor
        slow: list[ProbeResult] = []
        healthy: list[ProbeResult] = []
        for r in results:
            if (r.latency_s > threshold and self.hedged_probes
                    and r.vantage not in self._hedge_confirmed):
                self.hedges_run += 1
                hedge = self.probe_from(r.vantage)
                if hedge.ok and hedge.latency_s < r.latency_s:
                    r = hedge
            if r.latency_s > threshold:
                slow.append(r)
                self.timeline.emit(
                    r.at, "probe_slow", str(r.vantage),
                    f"{r.address} via {r.pop}: {r.latency_s * 1e3:.0f}ms "
                    f"vs baseline {baseline * 1e3:.0f}ms", phase="observe",
                )
            else:
                healthy.append(r)
        self._hedge_confirmed = {r.vantage for r in slow}
        if slow and not healthy:
            self.gray_rounds += 1
            if self.consecutive_gray == 0:
                self._first_failure_at = slow[0].at
            self.consecutive_gray += 1
            if self.consecutive_gray >= self.gray_threshold:
                self.timeline.emit(
                    self.clock.now(), "gray_detected", self.policy_name,
                    f"{len(slow)} vantage(s) slow after hedging, "
                    f"{self.consecutive_gray} consecutive rounds",
                    phase="observe",
                )
                self._trigger_failover(slow, reason="latency")
        else:
            if self.consecutive_gray:
                self.timeline.emit(
                    self.clock.now(), "gray_recovered", self.policy_name,
                    phase="observe",
                )
            self.consecutive_gray = 0
            if self.consecutive_rerouted == 0:
                self._first_failure_at = None
            # Only feed the baseline from rounds that are not suspect —
            # learning the gray latency as the new normal would mask it.
            for r in healthy:
                self._latencies.append(r.latency_s)

    def tick(self) -> list[ProbeResult]:
        """Probe if a probe is due; the scenario loop calls this freely."""
        now = self.clock.now()
        if self._next_probe_at is not None and now < self._next_probe_at:
            return []
        self._next_probe_at = now + self.probe_interval
        return self.probe_round()

    # -- reaction ------------------------------------------------------------

    def _precheck_failover(self) -> None:
        """Verify the post-swap control plane before enacting the swap.

        The §6 mitigation only restores service when the standby prefix is
        already announced and already dispatched by the edge — exactly what
        the control-plane checker proves.  A failing precheck means the
        swap would trade a blackhole for another blackhole.
        """
        from ..check.core import CheckError
        from ..check.deployment import precheck_rebind
        from ..check.plan import RebindPlan, verify_plan

        report = precheck_rebind(
            self.cdn, self.controller.engine, self.policy_name,
            self.failover_pool,
        )
        if not report.ok:
            rendered = "; ".join(f.message for f in report.errors)
            self.timeline.emit(
                self.clock.now(), "precheck_failed", self.policy_name,
                f"standby {self.failover_pool.name or self.failover_pool.advertised}: "
                f"{rendered}",
                phase="check",
            )
            if self.strict_checks:
                raise CheckError(
                    f"failover of {self.policy_name!r} rejected by precheck: "
                    f"{rendered}",
                    report.errors,
                )
            logging.getLogger("repro.check").warning(
                "failover precheck found errors (proceeding; strict_checks "
                "would refuse): %s", rendered,
            )
        # Symbolic pre-flight: diff the packet space across the swap and
        # record plan_verified/plan_unsafe on the timeline (phase="check")
        # — the chaos plan_safety invariant audits exactly this record.
        diff = verify_plan(
            RebindPlan(kind="failover", policy=self.policy_name,
                       pool=self.failover_pool),
            self.cdn, self.controller.engine,
            timeline=self.timeline, clock=self.clock,
            strict=self.strict_checks,
        )
        if not diff.ok:
            logging.getLogger("repro.check").warning(
                "failover plan is unsafe (proceeding; strict_checks would "
                "refuse): %s", "; ".join(f.message for f in diff.report.errors),
            )

    def _trigger_failover(
        self, failures: list[ProbeResult], reason: str = "blackhole"
    ) -> None:
        if self.failed_over or self.failover_pool is None:
            return
        trace = None
        if self.tracer is not None:
            trace = self.tracer.next_trace_id("failover")
            self.last_failover_trace = trace
            # Detection: first failed probe of this run → threshold crossed.
            detect_start = (
                self._first_failure_at if self._first_failure_at is not None
                else self.clock.now()
            )
            if reason == "latency":
                detect_detail = (
                    f"{self.consecutive_gray}/{self.gray_threshold} all-slow rounds"
                )
            elif reason == "routing":
                detect_detail = (
                    f"catchment shifted from baseline "
                    f"({max(self.consecutive_rerouted, self.consecutive_failures)} "
                    f"round(s))"
                )
            else:
                detect_detail = (
                    f"{self.consecutive_failures}/{self.failure_threshold} failed rounds"
                )
            self.tracer.record(
                trace, "detect", detect_start, self.clock.now(), detect_detail,
            )
        if trace is not None:
            with self.tracer.span(trace, "precheck",
                                  f"standby {self.failover_pool.name}"):
                self._precheck_failover()
        else:
            self._precheck_failover()
        rebind_start = self.clock.now()
        op = self.controller.swap_pool(self.policy_name, self.failover_pool)
        if trace is not None:
            self.tracer.record(
                trace, "rebind", rebind_start, self.clock.now(),
                f"swap to {self.failover_pool.name}; "
                f"horizon t={op.propagation_horizon:.0f}",
            )
        self.failed_over = True
        self.consecutive_failures = 0
        self.consecutive_gray = 0
        self.consecutive_rerouted = 0
        verb = {"latency": "slow", "routing": "rerouted"}.get(reason, "failing")
        affected = sorted({str(r.pop) for r in failures})
        self.timeline.emit(
            self.clock.now(), "failover_triggered", self.policy_name,
            f"drained to {self.failover_pool.name} ({verb}: {', '.join(affected)}); "
            f"horizon t={op.propagation_horizon:.0f}",
            phase="react",
        )

    def reset(self) -> None:
        """Re-arm after the operator repairs and fails back manually.

        Clears the failover latch *and* all latency state — the repaired
        pool's baseline must be re-learned from scratch, not judged
        against the pre-incident window.
        """
        self.failed_over = False
        self.consecutive_failures = 0
        self.consecutive_gray = 0
        self.consecutive_rerouted = 0
        self._baseline_pops.clear()
        # In-flight hedge state must not survive a reset: a stale latch
        # would suppress the post-repair hedge and let a one-off slow
        # probe count straight into a second gray episode.
        self._hedge_confirmed.clear()
        self._latencies.clear()
        self._first_failure_at = None
