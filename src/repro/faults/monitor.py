"""Failure-aware control plane: probe PoPs, detect blackholes, rebind.

The paper's robustness claim (§3.4, §6) is that when addresses stop
working — a PoP fails, a prefix is leaked or attacked — the operator
*rebinds* at DNS-TTL timescales instead of waiting out BGP convergence.
This module closes that loop: a :class:`HealthMonitor` periodically probes
the service through the full simulated data path (policy DNS answer →
anycast route → TLS handshake → HTTP response) from a set of vantage ASes,
and after a configurable run of consecutive failures drives the
:class:`~repro.core.agility.AgilityController` to drain the affected pool
(``swap_pool`` to a pre-advertised standby, the §6 mitigation move).

End-to-end recovery is then bounded by ``detection + TTL``: detection
takes at most ``failure_threshold × probe_interval``, and downstream
caches age out the dead addresses within one TTL of the swap — the
``max(connection lifetime, TTL)`` bound of §4.4, measured by
:mod:`repro.experiments.failover`.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass

from ..clock import Clock
from ..core.agility import AgilityController
from ..core.pool import AddressPool
from ..dns.resolver import RecursiveResolver, ResolveError
from ..edge.cdn import CDN
from ..netsim.addr import IPAddress
from ..obs.trace import TraceRecorder
from ..web.http import HTTPVersion, Request
from ..web.tls import ClientHello, TLSError
from .events import FaultTimeline

__all__ = ["ProbeResult", "HealthMonitor"]


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """One end-to-end probe: DNS answer + data-path fetch from a vantage."""

    at: float
    vantage: object
    address: IPAddress | None  # the answer probed (None: DNS itself failed)
    pop: str | None            # catchment PoP for that address (None: blackhole)
    ok: bool
    detail: str = ""


class HealthMonitor:
    """Synthetic monitoring + automatic pool drain.

    Parameters
    ----------
    vantages:
        Client ASes to probe from — pick at least one per region so a
        regional blackhole is visible from inside the region.
    failover_pool:
        The standby :class:`AddressPool` (already advertised and
        listening, like the §6 backup prefix).  ``None`` makes the
        monitor observe-only.
    failure_threshold:
        Consecutive failed probe rounds (any vantage failing fails the
        round) before the failover fires.  1 = act on first blood.
    strict_checks:
        Run the control-plane checker against the post-swap state before
        enacting the failover.  ``False`` (default) logs and records a
        timeline event on error findings but still swaps — availability
        over purity, a monitor must not deadlock the mitigation; ``True``
        refuses the swap with :class:`~repro.check.core.CheckError`.
    """

    def __init__(
        self,
        cdn: CDN,
        clock: Clock,
        controller: AgilityController,
        policy_name: str,
        probe_hostname: str,
        vantages: list[object],
        failover_pool: AddressPool | None = None,
        probe_interval: float = 5.0,
        failure_threshold: int = 2,
        timeline: FaultTimeline | None = None,
        rng: random.Random | None = None,
        strict_checks: bool = False,
        tracer: TraceRecorder | None = None,
    ) -> None:
        if not vantages:
            raise ValueError("health monitoring needs at least one vantage AS")
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.cdn = cdn
        self.clock = clock
        self.controller = controller
        self.policy_name = policy_name
        self.probe_hostname = probe_hostname
        self.vantages = list(vantages)
        self.failover_pool = failover_pool
        self.probe_interval = probe_interval
        self.failure_threshold = failure_threshold
        self.timeline = timeline if timeline is not None else FaultTimeline()
        self.strict_checks = strict_checks
        self.tracer = tracer
        #: Trace id of the most recent failover's span group ("detect" /
        #: "precheck" / "rebind"); scenarios append their own "recover"
        #: span to the same trace once they can see recovery.
        self.last_failover_trace: str | None = None
        self._rng = rng or random.Random(0x4EA1)
        self.consecutive_failures = 0
        self.failed_over = False
        self.probes_run = 0
        self._first_failure_at: float | None = None
        self._next_probe_at: float | None = None  # None: probe on first tick

    # -- probing -------------------------------------------------------------

    def probe_from(self, vantage: object) -> ProbeResult:
        """One full-path probe: fresh resolver (no cache — synthetic
        monitors must see the *current* answer), then a real fetch."""
        now = self.clock.now()
        resolver = RecursiveResolver(
            f"probe-{vantage}-{self.probes_run}",
            self.clock,
            self.cdn.dns_transport(vantage),
            rng=random.Random(self._rng.getrandbits(32)),
        )
        try:
            addresses = resolver.resolve_addresses(self.probe_hostname)
        except ResolveError as exc:
            return ProbeResult(now, vantage, None, None, False, f"dns: {exc}")
        if not addresses:
            return ProbeResult(now, vantage, None, None, False, "dns: empty answer")
        address = addresses[0]
        pop = self.cdn.network.pop_for(vantage, address)
        transport = self.cdn.transport_for(vantage)
        try:
            connection = transport.handshake(
                f"probe-{vantage}", address, 443,
                ClientHello(sni=self.probe_hostname), HTTPVersion.H2,
            )
            transport.serve(connection, Request(authority=self.probe_hostname, path="/"))
        except (ConnectionRefusedError, ConnectionResetError, TLSError) as exc:
            return ProbeResult(now, vantage, address, pop, False, f"data path: {exc}")
        return ProbeResult(now, vantage, address, pop, True)

    def probe_round(self) -> list[ProbeResult]:
        """Probe every vantage once and react; returns the results."""
        self.probes_run += 1
        results = [self.probe_from(v) for v in self.vantages]
        failures = [r for r in results if not r.ok]
        for r in failures:
            self.timeline.emit(
                r.at, "probe_failed", str(r.vantage),
                f"{r.address} via {r.pop}: {r.detail}", phase="observe",
            )
        if failures:
            if self.consecutive_failures == 0:
                self._first_failure_at = failures[0].at
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._trigger_failover(failures)
        else:
            if self.consecutive_failures:
                self.timeline.emit(
                    self.clock.now(), "probe_recovered", self.policy_name,
                    phase="observe",
                )
            self.consecutive_failures = 0
            self._first_failure_at = None
        return results

    def tick(self) -> list[ProbeResult]:
        """Probe if a probe is due; the scenario loop calls this freely."""
        now = self.clock.now()
        if self._next_probe_at is not None and now < self._next_probe_at:
            return []
        self._next_probe_at = now + self.probe_interval
        return self.probe_round()

    # -- reaction ------------------------------------------------------------

    def _precheck_failover(self) -> None:
        """Verify the post-swap control plane before enacting the swap.

        The §6 mitigation only restores service when the standby prefix is
        already announced and already dispatched by the edge — exactly what
        the control-plane checker proves.  A failing precheck means the
        swap would trade a blackhole for another blackhole.
        """
        from ..check.core import CheckError
        from ..check.deployment import precheck_rebind

        report = precheck_rebind(
            self.cdn, self.controller.engine, self.policy_name,
            self.failover_pool,
        )
        if report.ok:
            return
        rendered = "; ".join(f.message for f in report.errors)
        self.timeline.emit(
            self.clock.now(), "precheck_failed", self.policy_name,
            f"standby {self.failover_pool.name or self.failover_pool.advertised}: "
            f"{rendered}",
            phase="check",
        )
        if self.strict_checks:
            raise CheckError(
                f"failover of {self.policy_name!r} rejected by precheck: {rendered}",
                report.errors,
            )
        logging.getLogger("repro.check").warning(
            "failover precheck found errors (proceeding; strict_checks "
            "would refuse): %s", rendered,
        )

    def _trigger_failover(self, failures: list[ProbeResult]) -> None:
        if self.failed_over or self.failover_pool is None:
            return
        trace = None
        if self.tracer is not None:
            trace = self.tracer.next_trace_id("failover")
            self.last_failover_trace = trace
            # Detection: first failed probe of this run → threshold crossed.
            detect_start = (
                self._first_failure_at if self._first_failure_at is not None
                else self.clock.now()
            )
            self.tracer.record(
                trace, "detect", detect_start, self.clock.now(),
                f"{self.consecutive_failures}/{self.failure_threshold} failed rounds",
            )
        if trace is not None:
            with self.tracer.span(trace, "precheck",
                                  f"standby {self.failover_pool.name}"):
                self._precheck_failover()
        else:
            self._precheck_failover()
        rebind_start = self.clock.now()
        op = self.controller.swap_pool(self.policy_name, self.failover_pool)
        if trace is not None:
            self.tracer.record(
                trace, "rebind", rebind_start, self.clock.now(),
                f"swap to {self.failover_pool.name}; "
                f"horizon t={op.propagation_horizon:.0f}",
            )
        self.failed_over = True
        self.consecutive_failures = 0
        blackholed = sorted({str(r.pop) for r in failures})
        self.timeline.emit(
            self.clock.now(), "failover_triggered", self.policy_name,
            f"drained to {self.failover_pool.name} (failing: {', '.join(blackholed)}); "
            f"horizon t={op.propagation_horizon:.0f}",
            phase="react",
        )

    def reset(self) -> None:
        """Re-arm after the operator repairs and fails back manually."""
        self.failed_over = False
        self.consecutive_failures = 0
