"""Fault-kind registry: build any fault from its (kind, params) spec.

Chaos campaigns must be *data* — JSON a minimizer can slice, a fixture
file can pin, a report can embed — so every injectable fault registers a
factory under its ``kind`` string.  :func:`build_fault` turns a spec back
into a live :class:`~repro.faults.injector.Fault`; the round trip
``spec -> build_fault -> apply`` is what makes deterministic campaign
replay (and therefore delta-debugging) possible.

Params are JSON-scalar only; the one structured type (an address prefix)
is accepted as its string form and parsed here.
"""

from __future__ import annotations

from collections.abc import Callable

from ..netsim.addr import Prefix, parse_prefix
from .errors import FaultConfigError, UnknownFaultKindError
from .gray import LossyLink, OverloadedPoP, ResolverBrownout, SlowServer
from .injector import Fault, PopOutage, PopWithdrawal, ServerCrash, TransportDegrade
from .routing import PersistentFlap, RouteLeak, SessionReset, SlowConvergence

__all__ = ["FAULT_KINDS", "register_fault", "build_fault", "fault_kinds"]

FAULT_KINDS: dict[str, Callable[..., Fault]] = {}


def register_fault(kind: str, factory: Callable[..., Fault]) -> None:
    """Register ``factory`` under ``kind`` (campaign specs name kinds)."""
    if kind in FAULT_KINDS:
        raise FaultConfigError(f"fault kind {kind!r} already registered")
    FAULT_KINDS[kind] = factory


def fault_kinds() -> list[str]:
    """Every buildable kind, sorted (campaign generators sample from it)."""
    return sorted(FAULT_KINDS)


def build_fault(kind: str, **params) -> Fault:
    """Instantiate the fault a campaign spec describes.

    Raises :class:`UnknownFaultKindError` for unregistered kinds and
    :class:`FaultConfigError` (via the fault's own validation) for bad
    parameters — both before anything is scheduled.
    """
    factory = FAULT_KINDS.get(kind)
    if factory is None:
        raise UnknownFaultKindError(
            f"unknown fault kind {kind!r}; registered: {', '.join(fault_kinds())}"
        )
    try:
        return factory(**params)
    except TypeError as exc:
        raise FaultConfigError(f"fault kind {kind!r}: {exc}") from exc


def _with_prefix(cls):
    """Wrap a prefix-taking fault class to accept the JSON string form."""

    def factory(prefix, **params) -> Fault:
        if not isinstance(prefix, Prefix):
            try:
                prefix = parse_prefix(prefix)
            except (ValueError, TypeError) as exc:
                raise FaultConfigError(f"bad prefix {prefix!r}: {exc}") from exc
        return cls(prefix=prefix, **params)

    return factory


register_fault("pop_withdrawal", _with_prefix(PopWithdrawal))
register_fault("pop_outage", PopOutage)
register_fault("server_crash", ServerCrash)
register_fault("transport_degrade", TransportDegrade)
register_fault("slow_server", SlowServer)
register_fault("lossy_link", LossyLink)
register_fault("resolver_brownout", ResolverBrownout)
register_fault("overloaded_pop", OverloadedPoP)
register_fault("route_leak", _with_prefix(RouteLeak))
register_fault("session_reset", SessionReset)
register_fault("slow_convergence", SlowConvergence)
register_fault("persistent_flap", _with_prefix(PersistentFlap))
