"""Seeded, clock-scheduled fault injection against a live deployment.

The paper's robustness story (§4, §6) is exercised here from the other
side: a :class:`FaultPlan` declares *what breaks when* — DNS paths degrade,
edge servers crash, whole PoPs withdraw, BGP announcements flap — and a
:class:`FaultInjector` executes the plan against simulated-clock time,
emitting a :class:`~repro.faults.events.FaultEvent` for every injection and
reversion.  Scenarios are deterministic: schedules are explicit, and any
randomness a fault needs comes from the injector's ``random.Random``.

Usage::

    plan = FaultPlan()
    plan.at(60.0, PopOutage("ashburn"), duration=120.0)
    plan.flap(POOL, "london", start=30.0, period=20.0, cycles=3)
    injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn))
    while clock.now() < horizon:
        injector.tick()        # applies/reverts everything now due
        ... drive traffic ...
        clock.advance(1.0)
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field

from ..clock import Clock
from ..edge.cdn import CDN
from ..netsim.addr import Prefix
from ..netsim.anycast import AnycastNetwork
from .events import FaultEvent, FaultTimeline
from .transport import FlakyTransport

__all__ = [
    "FaultTargets",
    "Fault",
    "PopWithdrawal",
    "PopOutage",
    "ServerCrash",
    "TransportDegrade",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(slots=True)
class FaultTargets:
    """What a plan's faults may reach into.

    ``network`` defaults to ``cdn.network``; ``transports`` holds named
    :class:`FlakyTransport` wrappers for DNS-path faults.
    """

    cdn: CDN | None = None
    network: AnycastNetwork | None = None
    transports: dict[str, FlakyTransport] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.network is None and self.cdn is not None:
            self.network = self.cdn.network

    def require_cdn(self) -> CDN:
        if self.cdn is None:
            raise RuntimeError("this fault needs a CDN target")
        return self.cdn

    def require_network(self) -> AnycastNetwork:
        if self.network is None:
            raise RuntimeError("this fault needs an anycast network target")
        return self.network


class Fault:
    """One injectable failure; subclasses implement apply/revert."""

    kind: str = "fault"

    @property
    def target(self) -> str:
        raise NotImplementedError

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        """Inject; returns a human-readable detail string."""
        raise NotImplementedError

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        """Undo the injection (scheduled via ``duration``)."""
        raise NotImplementedError


@dataclass(slots=True)
class PopWithdrawal(Fault):
    """Withdraw one prefix's BGP origination at one PoP (maintenance or
    misconfiguration); reverting re-announces it — so a scheduled
    withdraw+revert pair is precisely a BGP flap."""

    prefix: Prefix
    pop: str
    kind: str = "pop_withdrawal"

    @property
    def target(self) -> str:
        return f"{self.pop}:{self.prefix}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_network().withdraw_from(self.prefix, self.pop)
        return f"withdrew {self.prefix} from {self.pop}"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_network().announce_from(self.prefix, [self.pop])
        return f"re-announced {self.prefix} from {self.pop}"


@dataclass(slots=True)
class PopOutage(Fault):
    """A whole-PoP failure: every server crashes and every prefix the PoP
    originates is withdrawn (the routers lose their anycast next-hops)."""

    pop: str
    kind: str = "pop_outage"
    _withdrawn: list[Prefix] = field(default_factory=list)

    @property
    def target(self) -> str:
        return self.pop

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        cdn = targets.require_cdn()
        network = targets.require_network()
        cdn.datacenters[self.pop].crash_all_servers()
        self._withdrawn = [
            prefix for prefix, pops in network.announced_prefixes().items()
            if self.pop in pops
        ]
        for prefix in self._withdrawn:
            network.withdraw_from(prefix, self.pop)
        return f"{self.pop} down: {len(self._withdrawn)} prefixes withdrawn, servers crashed"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        cdn = targets.require_cdn()
        network = targets.require_network()
        for prefix in self._withdrawn:
            network.announce_from(prefix, [self.pop])
        cdn.datacenters[self.pop].restore_all_servers()
        restored, self._withdrawn = self._withdrawn, []
        return f"{self.pop} restored: {len(restored)} prefixes re-announced"


@dataclass(slots=True)
class ServerCrash(Fault):
    """Crash one edge server (``server=None``: a seeded random pick)."""

    pop: str
    server: str | None = None
    kind: str = "server_crash"
    _crashed: str | None = None

    @property
    def target(self) -> str:
        return f"{self.pop}:{self.server or '?'}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        dc = targets.require_cdn().datacenters[self.pop]
        name = self.server if self.server is not None else rng.choice(sorted(dc.servers))
        dc.crash_server(name)
        self._crashed = name
        return f"crashed {name}"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        if self._crashed is None:
            return "nothing to restore"
        targets.require_cdn().datacenters[self.pop].restore_server(self._crashed)
        name, self._crashed = self._crashed, None
        return f"restored {name}"


@dataclass(slots=True)
class TransportDegrade(Fault):
    """Degrade a named DNS transport (loss/corruption/latency); reverting
    heals the path back to clean forwarding."""

    transport: str
    drop: float = 0.0
    corrupt: float = 0.0
    delay_s: float = 0.0
    kind: str = "transport_degrade"

    @property
    def target(self) -> str:
        return self.transport

    def _wrapper(self, targets: FaultTargets) -> FlakyTransport:
        try:
            return targets.transports[self.transport]
        except KeyError:
            raise KeyError(f"no transport named {self.transport!r} in targets") from None

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        self._wrapper(targets).set_fault(self.drop, self.corrupt, self.delay_s)
        return f"drop={self.drop} corrupt={self.corrupt} delay={self.delay_s}s"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        self._wrapper(targets).set_fault()
        return "healed"


@dataclass(frozen=True, slots=True)
class ScheduledFault:
    at: float
    fault: Fault
    duration: float | None = None  # None = permanent until manual revert


class FaultPlan:
    """A declarative, clock-indexed schedule of faults."""

    def __init__(self) -> None:
        self.entries: list[ScheduledFault] = []

    def at(self, when: float, fault: Fault, duration: float | None = None) -> "FaultPlan":
        if when < 0:
            raise ValueError("fault time must be non-negative")
        if duration is not None and duration <= 0:
            raise ValueError("fault duration must be positive")
        self.entries.append(ScheduledFault(when, fault, duration))
        return self

    def flap(
        self,
        prefix: Prefix,
        pop: str,
        start: float,
        period: float,
        cycles: int,
    ) -> "FaultPlan":
        """BGP flapping: ``cycles`` withdraw/re-announce oscillations of
        ``prefix`` at ``pop``, each half a ``period`` long."""
        if period <= 0 or cycles <= 0:
            raise ValueError("flap needs positive period and cycles")
        for i in range(cycles):
            self.at(start + i * period, PopWithdrawal(prefix, pop), duration=period / 2)
        return self

    def __len__(self) -> int:
        return len(self.entries)


class FaultInjector:
    """Executes a :class:`FaultPlan` against simulated time.

    Call :meth:`tick` from the scenario loop; every scheduled injection
    (and every ``duration``-scheduled reversion) whose time has come fires,
    in schedule order, each emitting onto the timeline.

    Ordering is deterministic even for same-timestamp events: the queue
    sorts on ``(when, seq)`` where ``seq`` is a monotonically increasing
    sequence number assigned at enqueue time, so ties fire in insertion
    order (plan order for injections; apply order for reversions) and two
    runs of the same plan always produce the same
    :class:`~repro.faults.events.FaultTimeline`.
    """

    def __init__(
        self,
        clock: Clock,
        plan: FaultPlan,
        targets: FaultTargets,
        rng: random.Random | None = None,
        timeline: FaultTimeline | None = None,
    ) -> None:
        self.clock = clock
        self.targets = targets
        self.rng = rng or random.Random(0xFA07)
        self.timeline = timeline if timeline is not None else FaultTimeline()
        self._seq = itertools.count()
        # Heap of (time, seq, phase, scheduled) — seq keeps ordering stable.
        self._queue: list[tuple[float, int, str, ScheduledFault]] = []
        for entry in plan.entries:
            heapq.heappush(self._queue, (entry.at, next(self._seq), "inject", entry))
        self._active: dict[int, ScheduledFault] = {}

    # -- execution -----------------------------------------------------------

    def tick(self) -> list[FaultEvent]:
        """Fire everything due at or before the current simulated time."""
        now = self.clock.now()
        fired: list[FaultEvent] = []
        while self._queue and self._queue[0][0] <= now:
            _, _, phase, entry = heapq.heappop(self._queue)
            if phase == "inject":
                detail = entry.fault.apply(self.targets, self.rng)
                self._active[id(entry)] = entry
                if entry.duration is not None:
                    heapq.heappush(
                        self._queue,
                        (entry.at + entry.duration, next(self._seq), "revert", entry),
                    )
            else:
                detail = entry.fault.revert(self.targets, self.rng)
                self._active.pop(id(entry), None)
            fired.append(self.timeline.emit(
                now, entry.fault.kind, entry.fault.target, detail, phase=phase
            ))
        return fired

    def revert_all(self) -> list[FaultEvent]:
        """Manually heal every still-active fault (scenario teardown)."""
        fired = []
        for entry in list(self._active.values()):
            detail = entry.fault.revert(self.targets, self.rng)
            fired.append(self.timeline.emit(
                self.clock.now(), entry.fault.kind, entry.fault.target, detail,
                phase="revert",
            ))
        self._active.clear()
        self._queue = [item for item in self._queue if item[2] != "revert"]
        heapq.heapify(self._queue)
        return fired

    # -- introspection ---------------------------------------------------------

    def active_faults(self) -> list[Fault]:
        return [entry.fault for entry in self._active.values()]

    def pending_count(self) -> int:
        return len(self._queue)
