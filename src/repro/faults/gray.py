"""Gray failures: slow-but-alive degradations the binary probes miss.

Real CDN incidents are rarely clean blackholes.  A server answers — ten
times slower than it should; a PoP's ingress loses a third of its SYNs; an
upstream resolver path browns out without going dark; an edge under load
sheds the connections it cannot absorb.  Every fault here keeps the
service *partially* working, which is exactly the regime where a naive
ok/dead health monitor either never reacts (everything "works") or
flip-flops (everything "fails" intermittently).  The latency-aware
detection in :class:`~repro.faults.monitor.HealthMonitor` and the
:mod:`repro.chaos` invariants are tested against these.

All four are ordinary :class:`~repro.faults.injector.Fault` subclasses, so
they schedule on a :class:`~repro.faults.injector.FaultPlan` next to the
hard faults and registered under their ``kind`` strings in
:mod:`repro.faults.registry` for campaign (de)serialization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .errors import FaultConfigError
from .injector import Fault, FaultTargets

__all__ = ["SlowServer", "LossyLink", "ResolverBrownout", "OverloadedPoP"]


@dataclass(slots=True)
class SlowServer(Fault):
    """Inflate serve latency at a PoP — correct answers, delivered late.

    ``server=None`` (the gray drill's default) slows *every* server in the
    PoP: the whole-PoP slowdown an overloaded upstream or a failing NIC
    offload produces, and the case the monitor's latency drain targets.  A
    named ``server`` slows just that box (hedged probes absorb it — one
    slow machine in a rack is ECMP noise, not a pool-level incident).
    """

    pop: str
    server: str | None = None
    factor: float = 10.0
    kind: str = "slow_server"
    _saved: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise FaultConfigError(f"slow_server factor must exceed 1, got {self.factor}")

    @property
    def target(self) -> str:
        return f"{self.pop}:{self.server or '*'}"

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        dc = targets.require_cdn().datacenters[self.pop]
        names = [self.server] if self.server is not None else sorted(dc.servers)
        for name in names:
            server = dc.servers[name]
            self._saved[name] = server.serve_latency_s
            server.serve_latency_s = server.serve_latency_s * self.factor
        return f"{len(names)} server(s) serving at {self.factor:g}x latency"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        dc = targets.require_cdn().datacenters[self.pop]
        for name, latency in self._saved.items():
            dc.servers[name].serve_latency_s = latency
        restored, self._saved = len(self._saved), {}
        return f"{restored} server(s) back to nominal latency"


@dataclass(slots=True)
class LossyLink(Fault):
    """Partial SYN loss at one PoP's ingress (fabric fault, peering loss).

    Some connections succeed, some are refused — the intermittent failure
    mix that exercises the monitor's consecutive-round hysteresis and the
    chaos flip-flop invariant.
    """

    pop: str
    drop: float = 0.5
    kind: str = "lossy_link"

    def __post_init__(self) -> None:
        if not 0.0 < self.drop <= 1.0:
            raise FaultConfigError(f"lossy_link drop must be in (0, 1], got {self.drop}")

    @property
    def target(self) -> str:
        return self.pop

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_cdn().datacenters[self.pop].ingress_loss = self.drop
        return f"ingress dropping {self.drop:.0%} of SYNs"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_cdn().datacenters[self.pop].ingress_loss = 0.0
        return "ingress clean"


@dataclass(slots=True)
class ResolverBrownout(Fault):
    """Degrade (not kill) upstream DNS paths: slow answers, partial loss.

    ``transport`` names one registered :class:`~repro.faults.transport.
    FlakyTransport` from the targets, or ``"*"`` to brown out every
    registered path at once — a regional resolver brownout as seen by the
    whole client fleet.  Resolvers with retries enabled survive it, which
    is precisely what makes their *retry timing* matter (full-jitter
    backoff keeps the fleet from retrying in lockstep).
    """

    transport: str = "*"
    drop: float = 0.3
    delay_s: float = 1.0
    kind: str = "resolver_brownout"
    _applied: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop < 1.0:
            raise FaultConfigError(
                f"resolver_brownout drop must be in [0, 1) — a full outage "
                f"is a TransportDegrade, got {self.drop}"
            )
        if self.delay_s < 0:
            raise FaultConfigError(f"delay_s must be non-negative, got {self.delay_s}")

    @property
    def target(self) -> str:
        return self.transport

    def _names(self, targets: FaultTargets) -> list[str]:
        if self.transport == "*":
            return sorted(targets.transports)
        if self.transport not in targets.transports:
            raise KeyError(f"no transport named {self.transport!r} in targets")
        return [self.transport]

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        self._applied = self._names(targets)
        for name in self._applied:
            targets.transports[name].set_fault(drop=self.drop, delay_s=self.delay_s)
        return (
            f"{len(self._applied)} path(s) browned out: "
            f"drop={self.drop:g} delay={self.delay_s:g}s"
        )

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        for name in self._applied:
            targets.transports[name].set_fault()
        healed, self._applied = len(self._applied), []
        return f"{healed} path(s) healed"


@dataclass(slots=True)
class OverloadedPoP(Fault):
    """Capacity-bound a PoP: it serves what it can and sheds the rest.

    The admission cap is per capacity window (the scenario loop opens one
    per tick via :meth:`~repro.edge.datacenter.Datacenter.
    begin_capacity_window`), so a campaign tick with more arrivals than
    ``capacity`` refuses the excess and counts it in ``Datacenter.sheds``.
    """

    pop: str
    capacity: int = 2
    kind: str = "overloaded_pop"

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise FaultConfigError(f"capacity must be at least 1, got {self.capacity}")

    @property
    def target(self) -> str:
        return self.pop

    def apply(self, targets: FaultTargets, rng: random.Random) -> str:
        dc = targets.require_cdn().datacenters[self.pop]
        dc.capacity = self.capacity
        dc.begin_capacity_window()
        return f"admission capped at {self.capacity}/window"

    def revert(self, targets: FaultTargets, rng: random.Random) -> str:
        targets.require_cdn().datacenters[self.pop].capacity = None
        return "capacity uncapped"
