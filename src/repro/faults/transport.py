"""Fault-injecting DNS transport wrappers.

A resolver's upstream is a callable ``(query_bytes) -> response_bytes |
None`` (see :mod:`repro.dns.resolver`), which makes the failure surface a
one-line wrapper: drop the response (timeout), corrupt it (bit damage /
off-path spoofing debris), or delay it (congested path).  All randomness
comes from an explicit ``random.Random``; all delay is simulated-clock
time, so lossy scenarios replay exactly.
"""

from __future__ import annotations

import random

from ..clock import Clock
from .errors import FaultConfigError
from .events import FaultTimeline

__all__ = ["FlakyTransport"]


def _validate_fault_mix(drop: float, corrupt: float, delay_s: float) -> None:
    """Reject impossible probability mixes up front (FaultConfigError).

    ``drop`` and ``corrupt`` are probabilities of mutually exclusive
    outcomes for one call, so each must lie in [0, 1] and their sum cannot
    exceed 1 — a combined mass above 1 silently reweights the mix the
    caller asked for."""
    if not 0.0 <= drop <= 1.0:
        raise FaultConfigError(f"drop probability must be in [0, 1], got {drop}")
    if not 0.0 <= corrupt <= 1.0:
        raise FaultConfigError(f"corrupt probability must be in [0, 1], got {corrupt}")
    if drop + corrupt > 1.0:
        raise FaultConfigError(
            f"drop + corrupt must not exceed 1 (got {drop} + {corrupt} = {drop + corrupt})"
        )
    if delay_s < 0:
        raise FaultConfigError(f"delay_s must be non-negative, got {delay_s}")


class FlakyTransport:
    """Wraps a DNS transport: drops, corrupts, or delays responses.

    ``drop``/``corrupt`` are per-call probabilities; ``delay_s`` (with a
    ``clock``) advances simulated time on every forwarded call, modelling a
    slow upstream path.  Probabilities may be retuned at runtime — the
    :class:`~repro.faults.injector.FaultInjector` does exactly that to
    degrade and later heal a path mid-scenario.
    """

    def __init__(
        self,
        inner,
        rng: random.Random,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay_s: float = 0.0,
        clock: Clock | None = None,
        timeline: FaultTimeline | None = None,
        name: str = "flaky",
    ) -> None:
        _validate_fault_mix(drop, corrupt, delay_s)
        if delay_s > 0 and clock is None:
            raise ValueError("delay_s needs a clock to charge the delay against")
        self.inner = inner
        self.rng = rng
        self.drop = drop
        self.corrupt = corrupt
        self.delay_s = delay_s
        self.clock = clock
        self.timeline = timeline
        self.name = name
        self.calls = 0

    def __call__(self, wire: bytes):
        self.calls += 1
        if self.delay_s > 0 and self.clock is not None:
            self.clock.advance(self.delay_s)
        if self.rng.random() < self.drop:
            self._emit("transport_dropped")
            return None
        response = self.inner(wire)
        if response is not None and self.rng.random() < self.corrupt:
            self._emit("transport_corrupted")
            return b"\xff" + response[1:]
        return response

    def set_fault(self, drop: float = 0.0, corrupt: float = 0.0, delay_s: float = 0.0) -> None:
        """Retune the failure mix (injector hook); 0/0/0 heals the path."""
        _validate_fault_mix(drop, corrupt, delay_s)
        if delay_s > 0 and self.clock is None:
            raise ValueError("delay_s needs a clock to charge the delay against")
        self.drop = drop
        self.corrupt = corrupt
        self.delay_s = delay_s

    def _emit(self, kind: str) -> None:
        if self.timeline is not None and self.clock is not None:
            self.timeline.emit(self.clock.now(), kind, self.name, phase="inject")
