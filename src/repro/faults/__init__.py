"""Fault injection and the failure-aware control plane.

The paper sells addressing agility as *robustness*: when a PoP fails or a
prefix is leaked, operators rebind pools at DNS-TTL timescales instead of
waiting for BGP (§3.4, §6).  This package provides both halves of the
argument:

* **injection** — :class:`FaultPlan`/:class:`FaultInjector` schedule
  deterministic, seeded faults (lossy DNS transports, server crashes,
  whole-PoP withdrawals, BGP flaps) against simulated-clock time, every
  one recorded as a :class:`FaultEvent` on a queryable
  :class:`FaultTimeline`;
* **detection & reaction** — :class:`HealthMonitor` probes the service
  end-to-end (policy DNS → anycast route → TLS → HTTP) and drives the
  :class:`~repro.core.agility.AgilityController` to drain a dead pool onto
  a pre-advertised standby.

:mod:`repro.experiments.failover` measures the closed loop: recovery
bounded by ``TTL + probe interval``, versus blackholed traffic until BGP
reconvergence without agility.
"""

from .errors import FaultConfigError, FaultError, UnknownFaultKindError
from .events import FaultEvent, FaultTimeline
from .gray import LossyLink, OverloadedPoP, ResolverBrownout, SlowServer
from .injector import (
    Fault,
    FaultInjector,
    FaultPlan,
    FaultTargets,
    PopOutage,
    PopWithdrawal,
    ServerCrash,
    TransportDegrade,
)
from .monitor import HealthMonitor, ProbeResult
from .registry import build_fault, fault_kinds, register_fault
from .transport import FlakyTransport

__all__ = [
    "FaultError",
    "FaultConfigError",
    "UnknownFaultKindError",
    "FaultEvent",
    "FaultTimeline",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultTargets",
    "PopOutage",
    "PopWithdrawal",
    "ServerCrash",
    "TransportDegrade",
    "SlowServer",
    "LossyLink",
    "ResolverBrownout",
    "OverloadedPoP",
    "HealthMonitor",
    "ProbeResult",
    "FlakyTransport",
    "build_fault",
    "register_fault",
    "fault_kinds",
]
