"""Structured fault telemetry: every injected fault, every reaction.

Chaos experiments are only useful if the run leaves an audit trail: *what*
was broken, *when*, and what the control plane did about it.  Every
injection, reversion, probe failure, and failover decision lands on one
:class:`FaultTimeline` as a :class:`FaultEvent`, so a scenario can be
replayed from its seed and interrogated afterwards ("how long between the
withdrawal and the pool swap?") without scraping logs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from collections.abc import Iterator

__all__ = ["FaultEvent", "FaultTimeline"]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One timestamped entry on the fault timeline.

    ``kind`` is a short machine-matchable tag (``pop_withdrawn``,
    ``server_crashed``, ``probe_failed``, ``failover_triggered``, …);
    ``phase`` separates the injection from its scheduled reversion.
    """

    at: float
    kind: str
    target: str
    detail: str = ""
    phase: str = "inject"  # "inject" | "revert" | "observe" | "check" | "react"


@dataclass(slots=True)
class FaultTimeline:
    """An append-only, queryable record of a chaos scenario."""

    _events: list[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> FaultEvent:
        if self._events and event.at < self._events[-1].at:
            raise ValueError(
                f"timeline must be appended in time order "
                f"({event.at} < {self._events[-1].at})"
            )
        self._events.append(event)
        return event

    def emit(self, at: float, kind: str, target: str, detail: str = "",
             phase: str = "inject") -> FaultEvent:
        return self.record(FaultEvent(at, kind, target, detail, phase))

    # -- queries -------------------------------------------------------------

    def events(
        self,
        kind: str | None = None,
        target: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[FaultEvent]:
        out = []
        for e in self._events:
            if kind is not None and e.kind != kind:
                continue
            if target is not None and e.target != target:
                continue
            if since is not None and e.at < since:
                continue
            if until is not None and e.at > until:
                continue
            out.append(e)
        return out

    def first(self, kind: str, since: float | None = None) -> FaultEvent | None:
        matches = self.events(kind=kind, since=since)
        return matches[0] if matches else None

    def last(self, kind: str) -> FaultEvent | None:
        matches = self.events(kind=kind)
        return matches[-1] if matches else None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    # -- serialization -------------------------------------------------------

    def to_json(self, indent: int | None = None) -> str:
        """The full timeline as a JSON array (chaos reports, replay audits).

        Round-trips exactly through :meth:`from_json`: the chaos minimizer
        saves a violating campaign's timeline alongside the campaign spec so
        a replay can be diffed event-for-event against the original run.
        """
        return json.dumps([asdict(e) for e in self._events], indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultTimeline":
        """Rebuild a timeline from :meth:`to_json` output (order-checked)."""
        timeline = cls()
        for entry in json.loads(text):
            timeline.record(FaultEvent(**entry))
        return timeline
