"""repro.flow — the columnar end-to-end flow engine.

ROADMAP item 1: the sk_lookup hot path was batched in an earlier PR, but
the rest of the request pipeline still walked per-request Python objects.
This package carries one struct-of-arrays :class:`FlowBatch` through the
*whole* path — DNS query → policy match → mint → resolver cache → ECMP →
dispatch → serve — with flow hashes computed once per batch (optionally on
a numpy backend) and threaded through every stage, and per-batch stats
folds instead of per-packet counter increments.

Scalar entry points across the codebase delegate to batch-of-one
(``lookup`` → ``lookup_batch``, ``evaluate`` → ``evaluate_batch``, …), so
the two paths share one implementation and cannot drift; the documented
exceptions and the parity argument live in DESIGN.md §12, and the
seeded differential suite (``tests/test_flow_differential.py``) enforces
batched ≡ scalar on verdicts *and* counters.
"""

from .backend import (
    FlowHashBackend,
    NumpyHashBackend,
    PythonHashBackend,
    default_backend,
)
from .batch import FlowBatch
from .engine import FlowEngine, FlowStats

__all__ = [
    "FlowBatch",
    "FlowEngine",
    "FlowStats",
    "FlowHashBackend",
    "PythonHashBackend",
    "NumpyHashBackend",
    "default_backend",
]
