"""The struct-of-arrays flow batch.

A :class:`FlowBatch` is the unit of work the flow engine moves through the
pipeline: parallel columns, one slot per flow, appended to stage by stage.
Input columns (hostname, source address, source port) are set at
construction; each pipeline stage fills in its output columns for every
flow in one pass.  Columns are plain Python lists — the numpy acceleration
lives in the hash backend, not the container, so the batch stays cheap to
index per flow where per-flow semantics (cache duplicate handling, RNG
draw order) require it.

Every column write is length-checked: the silent-truncation family of bugs
(``zip`` over mismatched columns) is exactly what
:class:`~repro.sockets.errors.BatchShapeError` exists to catch, and the
batch enforces it at the container level too.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..netsim.addr import IPAddress
from ..netsim.packet import FiveTuple
from ..sockets.errors import BatchShapeError
from ..sockets.lookup import LookupStage
from ..web.http import Connection

__all__ = ["FlowBatch"]


@dataclass(slots=True)
class FlowBatch:
    """One batch of flows, as parallel columns.

    Input columns (always populated, all the same length):

    ``hostnames``, ``src_addrs``, ``src_ports``

    Stage-output columns (populated by the engine as the batch advances;
    ``None`` in a slot means the flow fell out at an earlier stage):

    ``addresses``/``ttls``/``cached`` — resolve: the minted (or cached)
    address, its TTL, and whether the resolver cache answered;
    ``tuple5s``/``flow_hashes`` — connect setup: the 5-tuple and its hash,
    computed once per batch by the backend and reused by ECMP, listener
    selection, and dispatch;
    ``servers``/``connections`` — connect: ECMP+L4LB owner and the
    established connection;
    ``stages`` — dispatch: which lookup stage resolved the request packet;
    ``statuses`` — serve: the HTTP status per flow.
    """

    hostnames: list[str]
    src_addrs: list[IPAddress]
    src_ports: list[int]
    addresses: list[IPAddress | None] = field(default_factory=list)
    ttls: list[int] = field(default_factory=list)
    cached: list[bool] = field(default_factory=list)
    tuple5s: list[FiveTuple | None] = field(default_factory=list)
    flow_hashes: list[int | None] = field(default_factory=list)
    servers: list[str | None] = field(default_factory=list)
    connections: list[Connection | None] = field(default_factory=list)
    stages: list[LookupStage | None] = field(default_factory=list)
    statuses: list[int | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (len(self.hostnames) == len(self.src_addrs) == len(self.src_ports)):
            raise BatchShapeError(
                "FlowBatch", "input columns must be parallel",
                {
                    "hostnames": len(self.hostnames),
                    "src_addrs": len(self.src_addrs),
                    "src_ports": len(self.src_ports),
                },
            )

    def __len__(self) -> int:
        return len(self.hostnames)

    # -- column plumbing -----------------------------------------------------

    def set_column(self, name: str, values: Sequence) -> None:
        """Install a stage-output column; must parallel the batch."""
        if len(values) != len(self):
            raise BatchShapeError(
                f"FlowBatch.{name}", f"{name} must parallel the batch",
                {"flows": len(self), name: len(values)},
            )
        setattr(self, name, list(values))

    # -- views ----------------------------------------------------------------

    def resolved_indices(self) -> list[int]:
        """Slots that survived the resolve stage (have an address)."""
        return [i for i, addr in enumerate(self.addresses) if addr is not None]

    def connected_indices(self) -> list[int]:
        """Slots that survived the connect stage (have a connection)."""
        return [i for i, conn in enumerate(self.connections) if conn is not None]
