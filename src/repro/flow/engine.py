"""The end-to-end columnar flow engine.

One :class:`~repro.flow.batch.FlowBatch` moves through four stages:

resolve
    DNS query → resolver cache → policy match → mint → cache store.  The
    *only* stage that may run per item: Zipf workloads are duplicate-heavy
    and a batch's second request for a hostname must see the first
    request's cache store, exactly as a scalar loop would — so batches
    containing duplicate hostnames fall back to the scalar seams in flow
    order.  Duplicate-free batches take the columnar path (one
    ``lookup_batch``, one ``answer_batch``, one ``store_batch``), which is
    counter-identical because distinct cache keys cannot interact.
connect
    5-tuples built columnwise, flow hashes computed **once for the whole
    batch** by the hash backend, then one
    :meth:`~repro.edge.datacenter.Datacenter.connect_batch` call — ECMP,
    L4LB, SYN dispatch, TLS select, with ECMP and traffic-log accounting
    folded per batch.
dispatch
    Request packets on the established flows, grouped by owning server so
    each lookup path runs one contiguous batch, reusing the connect
    stage's hash column.
serve
    One :meth:`~repro.edge.datacenter.Datacenter.serve_batch` call;
    traffic-log request accounting folds once.

:meth:`FlowEngine.run_scalar` is the loop-of-scalars reference — same
deployment seams, no batching anywhere — and exists so the differential
suite can assert batched ≡ scalar on every verdict column and every
counter surface.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..dns.cache import DNSCache
from ..dns.records import DomainName, Question, ResourceRecord, RRType
from ..dns.server import AnswerSource, QueryContext
from ..dns.wire import Rcode
from ..edge.datacenter import Datacenter
from ..netsim.addr import IPAddress
from ..netsim.packet import FiveTuple, Packet
from ..sockets.lookup import LookupStage, flow_hash_tuple
from ..web.http import Connection, HTTPVersion, Request, Status
from ..web.tls import ClientHello
from .backend import FlowHashBackend, default_backend
from .batch import FlowBatch

__all__ = ["FlowEngine", "FlowStats"]


@dataclass(slots=True)
class FlowStats:
    """Per-engine rollup, folded once per batch (never per flow).

    Read by :func:`repro.obs.adapters.watch_flow_engine`."""

    batches: int = 0
    flows: int = 0
    cache_hits: int = 0
    minted: int = 0
    unresolved: int = 0
    connections: int = 0
    dispatched: int = 0
    served_ok: int = 0
    served_errors: int = 0
    bytes_served: int = 0


def _first_address(records: tuple[ResourceRecord, ...]) -> IPAddress:
    return records[0].rdata.address  # type: ignore[union-attr]


class FlowEngine:
    """Drives batches through resolve → connect → dispatch → serve.

    Parameters
    ----------
    source:
        The authoritative answering strategy (normally the policy engine's
        :class:`~repro.core.authoritative.PolicyAnswerSource`).
    cache:
        The resolver-side cache between clients and the authoritative.
    dc:
        The datacenter terminating the minted addresses.
    pop:
        PoP name stamped into the :class:`QueryContext` (where the
        anycast-routed query "arrived").
    version / port:
        Connection parameters for every flow (H2/443 by default).
    backend:
        Flow-hash backend; ``None`` picks numpy when available.
    """

    def __init__(
        self,
        source: AnswerSource,
        cache: DNSCache,
        dc: Datacenter,
        pop: str,
        version: HTTPVersion = HTTPVersion.H2,
        port: int = 443,
        backend: FlowHashBackend | None = None,
    ) -> None:
        self.source = source
        self.cache = cache
        self.dc = dc
        self.context = QueryContext(pop=pop)
        self.version = version
        self.port = port
        self.backend = backend or default_backend()
        self.stats = FlowStats()
        self._fold_serve_bytes = 0

    # -- stages ----------------------------------------------------------------

    def resolve_batch(self, batch: FlowBatch) -> FlowBatch:
        """Fill ``addresses``/``ttls``/``cached`` for every flow."""
        n = len(batch)
        questions = [
            Question(DomainName.from_text(h), RRType.A) for h in batch.hostnames
        ]
        addresses: list[IPAddress | None] = [None] * n
        ttls = [0] * n
        cached = [False] * n

        if len(set(batch.hostnames)) == n:
            # Columnar path: distinct keys cannot interact, so one batched
            # call per seam is counter-identical to the scalar loop.
            hits = self.cache.lookup_batch(questions)
            miss_idx = [i for i, hit in enumerate(hits) if hit is None]
            answers = self.source.answer_batch(
                [questions[i] for i in miss_idx], self.context
            )
            for i, hit in enumerate(hits):
                if hit is None:
                    continue
                records, _nx = hit
                if records:
                    addresses[i] = _first_address(records)
                    ttls[i] = records[0].ttl
                    cached[i] = True
            to_store: list[tuple[Question, tuple[ResourceRecord, ...]]] = []
            for i, answer in zip(miss_idx, answers):
                if answer.rcode is Rcode.NOERROR and answer.records:
                    to_store.append((questions[i], answer.records))
                    addresses[i] = _first_address(answer.records)
                    ttls[i] = answer.records[0].ttl
            self.cache.store_batch(to_store)
        else:
            # Duplicate hostnames in one batch: flow i+1 must observe flow
            # i's cache store, so run the scalar seams in flow order.
            for i, question in enumerate(questions):
                address, ttl, was_cached = self._resolve_one(question)
                addresses[i] = address
                ttls[i] = ttl
                cached[i] = was_cached

        batch.set_column("addresses", addresses)
        batch.set_column("ttls", ttls)
        batch.set_column("cached", cached)
        return batch

    def _resolve_one(self, question: Question) -> tuple[IPAddress | None, int, bool]:
        hit = self.cache.lookup(question)
        if hit is not None:
            records, _nx = hit
            if records:
                return _first_address(records), records[0].ttl, True
            return None, 0, True  # cached negative
        answer = self.source.answer(question, self.context)
        if answer.rcode is Rcode.NOERROR and answer.records:
            self.cache.store(question, answer.records)
            return _first_address(answer.records), answer.records[0].ttl, False
        return None, 0, False

    def connect_stage(self, batch: FlowBatch) -> FlowBatch:
        """Hash once per batch, then one ``connect_batch`` call."""
        n = len(batch)
        transport = self.version.transport
        tuple5s: list[FiveTuple | None] = [None] * n
        flow_hashes: list[int | None] = [None] * n
        servers: list[str | None] = [None] * n
        connections: list[Connection | None] = [None] * n

        idx = batch.resolved_indices()
        live = [
            FiveTuple(
                transport,
                batch.src_addrs[i],
                batch.src_ports[i],
                batch.addresses[i],
                self.port,
            )
            for i in idx
        ]
        hashes = self.backend.hash_tuples(live)
        requests = [
            (t5, ClientHello(sni=batch.hostnames[i]), self.version)
            for i, t5 in zip(idx, live)
        ]
        conns = self.dc.connect_batch(requests, flow_hashes=hashes)
        owner_of = self.dc.connection_owner
        for i, t5, fh, conn in zip(idx, live, hashes, conns):
            tuple5s[i] = t5
            flow_hashes[i] = fh
            servers[i] = owner_of(conn.conn_id)
            connections[i] = conn

        batch.set_column("tuple5s", tuple5s)
        batch.set_column("flow_hashes", flow_hashes)
        batch.set_column("servers", servers)
        batch.set_column("connections", connections)
        return batch

    def dispatch_stage(self, batch: FlowBatch, deliver: bool = False) -> FlowBatch:
        """Dispatch one request packet per established flow, grouped by
        owning server, reusing the connect stage's hash column."""
        stages: list[LookupStage | None] = [None] * len(batch)
        groups: dict[str, tuple[list[int], list[Packet], list[int]]] = {}
        for i in batch.connected_indices():
            owner = batch.servers[i]
            group = groups.get(owner)
            if group is None:
                group = ([], [], [])
                groups[owner] = group
            group[0].append(i)
            group[1].append(Packet(batch.tuple5s[i]))
            group[2].append(batch.flow_hashes[i])
        servers = self.dc.servers
        for owner, (idxs, packets, hashes) in groups.items():
            results = servers[owner].dispatch_batch(
                packets, deliver=deliver, flow_hashes=hashes
            )
            for i, result in zip(idxs, results):
                stages[i] = result.stage
        batch.set_column("stages", stages)
        return batch

    def serve_stage(self, batch: FlowBatch) -> FlowBatch:
        """One ``serve_batch`` call for every established flow."""
        statuses: list[int | None] = [None] * len(batch)
        idx = batch.connected_indices()
        pairs = [
            (batch.connections[i], Request(authority=batch.hostnames[i]))
            for i in idx
        ]
        responses = self.dc.serve_batch(pairs)
        for i, response in zip(idx, responses):
            statuses[i] = int(response.status)
        batch.set_column("statuses", statuses)
        self._fold_serve_bytes = sum(r.body_len for r in responses)
        return batch

    # -- drivers ---------------------------------------------------------------

    def run_batch(self, batch: FlowBatch) -> FlowBatch:
        """The full pipeline over one batch, with one stats fold at the end."""
        self.resolve_batch(batch)
        self.connect_stage(batch)
        self.dispatch_stage(batch)
        self.serve_stage(batch)
        self._fold(batch)
        return batch

    def run(self, batches: Iterable[FlowBatch]) -> FlowStats:
        for batch in batches:
            self.run_batch(batch)
        return self.stats

    def run_columns(
        self,
        hostnames: Sequence[str],
        src_addrs: Sequence[IPAddress],
        src_ports: Sequence[int],
    ) -> FlowBatch:
        """Convenience: build a batch from raw columns and run it."""
        return self.run_batch(FlowBatch(list(hostnames), list(src_addrs), list(src_ports)))

    def _fold(self, batch: FlowBatch) -> None:
        stats = self.stats
        stats.batches += 1
        stats.flows += len(batch)
        stats.cache_hits += sum(batch.cached)
        resolved = sum(1 for a in batch.addresses if a is not None)
        stats.minted += resolved - sum(
            1 for a, c in zip(batch.addresses, batch.cached) if a is not None and c
        )
        stats.unresolved += len(batch) - resolved
        stats.connections += sum(1 for c in batch.connections if c is not None)
        stats.dispatched += sum(1 for s in batch.stages if s is not None)
        ok = sum(1 for s in batch.statuses if s == int(Status.OK))
        errors = sum(1 for s in batch.statuses if s is not None and s != int(Status.OK))
        stats.served_ok += ok
        stats.served_errors += errors
        stats.bytes_served += self._fold_serve_bytes
        self._fold_serve_bytes = 0

    # -- the scalar reference -----------------------------------------------------

    def run_scalar(
        self,
        hostnames: Sequence[str],
        src_addrs: Sequence[IPAddress],
        src_ports: Sequence[int],
    ) -> FlowBatch:
        """The loop-of-scalars reference path for the differential suite.

        Touches the exact same deployment seams, one flow at a time, never
        a ``*_batch`` entry point (beyond their own batch-of-one
        delegation).  Engine :class:`FlowStats` are *not* folded here —
        this is the control arm, not the engine.
        """
        batch = FlowBatch(list(hostnames), list(src_addrs), list(src_ports))
        n = len(batch)
        transport = self.version.transport
        addresses: list[IPAddress | None] = [None] * n
        ttls = [0] * n
        cached = [False] * n
        tuple5s: list[FiveTuple | None] = [None] * n
        flow_hashes: list[int | None] = [None] * n
        servers: list[str | None] = [None] * n
        connections: list[Connection | None] = [None] * n
        stages: list[LookupStage | None] = [None] * n
        statuses: list[int | None] = [None] * n

        for i, hostname in enumerate(hostnames):
            question = Question(DomainName.from_text(hostname), RRType.A)
            addresses[i], ttls[i], cached[i] = self._resolve_one(question)

        for i, address in enumerate(addresses):
            if address is None:
                continue
            t5 = FiveTuple(transport, src_addrs[i], src_ports[i], address, self.port)
            tuple5s[i] = t5
            flow_hashes[i] = flow_hash_tuple(t5)
            conn = self.dc.connect(t5, ClientHello(sni=hostnames[i]), self.version)
            connections[i] = conn
            servers[i] = self.dc.connection_owner(conn.conn_id)

        dc_servers = self.dc.servers
        for i, conn in enumerate(connections):
            if conn is None:
                continue
            result = dc_servers[servers[i]].dispatch(
                Packet(tuple5s[i]), deliver=False, flow_hash=flow_hashes[i]
            )
            stages[i] = result.stage

        for i, conn in enumerate(connections):
            if conn is None:
                continue
            response = self.dc.serve(conn, Request(authority=hostnames[i]))
            statuses[i] = int(response.status)

        batch.set_column("addresses", addresses)
        batch.set_column("ttls", ttls)
        batch.set_column("cached", cached)
        batch.set_column("tuple5s", tuple5s)
        batch.set_column("flow_hashes", flow_hashes)
        batch.set_column("servers", servers)
        batch.set_column("connections", connections)
        batch.set_column("stages", stages)
        batch.set_column("statuses", statuses)
        return batch
