"""Flow-hash backends: pure Python, and an optional numpy vectorisation.

The engine computes every flow hash exactly once per batch and threads the
column through ECMP, L4LB, listener selection, and dispatch.  The hash is
the FNV-1a chain of :func:`repro.sockets.lookup.flow_hash_tuple`; the
numpy backend reimplements that chain over ``uint64`` arrays and must be
**bit-exact** — ECMP fan-out and SO_REUSEPORT member selection both key on
the hash value, so a backend that disagreed in even one bit would steer
flows to different servers depending on which backend computed it.  The
differential suite pins equality against the scalar reference.

numpy is optional (the container may not ship it); :func:`default_backend`
falls back to pure Python, and nothing imports numpy at module import
time.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..netsim.packet import FiveTuple
from ..sockets.lookup import flow_hash_tuple

__all__ = [
    "FlowHashBackend",
    "PythonHashBackend",
    "NumpyHashBackend",
    "default_backend",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


class FlowHashBackend:
    """Strategy interface: hash a column of 5-tuples."""

    name = "abstract"

    def hash_tuples(self, tuple5s: Sequence[FiveTuple]) -> list[int]:
        raise NotImplementedError


class PythonHashBackend(FlowHashBackend):
    """The reference: :func:`flow_hash_tuple` per tuple."""

    name = "python"

    def hash_tuples(self, tuple5s: Sequence[FiveTuple]) -> list[int]:
        return [flow_hash_tuple(t) for t in tuple5s]


class NumpyHashBackend(FlowHashBackend):
    """The FNV-1a chain vectorised over ``uint64`` columns.

    Each 5-tuple contributes five parts (protocol, src, sport, dst, dport);
    each part is split into low and high 64-bit halves (the high half is
    non-zero only for IPv6 addresses) so the per-part fold is two
    xor-multiply rounds, exactly like the scalar chain.  uint64 multiply
    wraps modulo 2^64 in numpy, which *is* the ``& MASK64`` of the
    reference — no masking needed.
    """

    name = "numpy"

    def __init__(self) -> None:
        import numpy  # raises ImportError where numpy is absent

        self._np = numpy

    def hash_tuples(self, tuple5s: Sequence[FiveTuple]) -> list[int]:
        np = self._np
        n = len(tuple5s)
        if n == 0:
            return []
        h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
        prime = np.uint64(_FNV_PRIME)
        for lo_of, hi_of in (
            (lambda t: int(t.protocol.wire_protocol), lambda t: 0),
            (lambda t: t.src.value & _MASK64, lambda t: t.src.value >> 64),
            (lambda t: t.src_port, lambda t: 0),
            (lambda t: t.dst.value & _MASK64, lambda t: t.dst.value >> 64),
            (lambda t: t.dst_port, lambda t: 0),
        ):
            lo = np.fromiter((lo_of(t) for t in tuple5s), dtype=np.uint64, count=n)
            hi = np.fromiter((hi_of(t) for t in tuple5s), dtype=np.uint64, count=n)
            h ^= lo
            h = h * prime
            h ^= hi
            h = h * prime
        return [int(x) for x in h]


def default_backend(prefer: str = "auto") -> FlowHashBackend:
    """Pick a hash backend.

    ``"auto"`` uses numpy when importable, pure Python otherwise;
    ``"numpy"`` insists (ImportError where absent); ``"python"`` forces the
    reference.
    """
    if prefer == "python":
        return PythonHashBackend()
    if prefer == "numpy":
        return NumpyHashBackend()
    if prefer != "auto":
        raise ValueError(f"unknown backend preference {prefer!r}")
    try:
        return NumpyHashBackend()
    except ImportError:
        return PythonHashBackend()
