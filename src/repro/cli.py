"""Command-line front end: regenerate any paper artefact from a shell.

::

    python -m repro list
    python -m repro fig7 --sites 8000 --requests 120000
    python -m repro fig8 --sessions 200
    python -m repro fig9 --ttl 30
    python -m repro dos --n 1000 --k 8
    python -m repro reduction
    python -m repro ttl
    python -m repro spillover
    python -m repro coloring
    python -m repro dnsload
    python -m repro failover --ttl 20
    python -m repro chaos --seed 7 --campaigns 20
    python -m repro chaos --campaign tests/fixtures/chaos_bad_campaign.json
    python -m repro chaos --minimize tests/fixtures/chaos_bad_campaign.json
    python -m repro bgp --seed 7 [--json]
    python -m repro scaling
    python -m repro check [config.json] [--strict] [--symbolic] [--only NAME]
    python -m repro plan plan.json
    python -m repro metrics [--experiment ttl|failover] [--format json|prom]
    python -m repro metrics --diff before.json after.json

Each subcommand prints the same table its benchmark saves under
``benchmarks/results/``.  For timing data use the benchmarks.  ``check``
is different: it runs the :mod:`repro.check` static-analysis passes and
exits non-zero when they find errors.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

__all__ = ["main", "build_parser"]


class _CommandFailed(Exception):
    """A handler produced output but the command must exit non-zero."""

    def __init__(self, output: str, code: int) -> None:
        super().__init__(output)
        self.output = output
        self.code = code


def _cmd_fig7(args) -> str:
    from .experiments.fig7 import Fig7Config, render_fig7_table, run_fig7

    config = Fig7Config(num_sites=args.sites, requests=args.requests, zipf_s=args.zipf)
    return render_fig7_table(run_fig7(config))


def _cmd_fig8(args) -> str:
    from .experiments.fig8 import Fig8Config, render_fig8_table, run_fig8

    config = Fig8Config(sessions=args.sessions, num_sites=args.sites)
    return render_fig8_table(run_fig8(config))


def _cmd_fig9(args) -> str:
    from .experiments.fig9 import Fig9Config, render_fig9_table, run_fig9

    return render_fig9_table(run_fig9(Fig9Config(ttl=args.ttl)))


def _cmd_dos(args) -> str:
    from .experiments.dos import render_dos_table, run_dos_case

    run = run_dos_case(n_services=args.n, k=args.k, probe_ttl=args.probe_ttl,
                       initial_ttl=args.initial_ttl, attack=args.attack)
    return render_dos_table([run])


def _cmd_reduction(args) -> str:
    from .experiments.reduction import render_reduction_table, run_reduction_table

    return render_reduction_table(run_reduction_table(args.hostnames), args.hostnames)


def _cmd_ttl(args) -> str:
    from .experiments.ttl import render_ttl_table, run_ttl_experiment

    return render_ttl_table(run_ttl_experiment(authoritative_ttl=args.ttl))


def _cmd_spillover(args) -> str:
    from .experiments.spillover import render_spillover_table, run_spillover

    return render_spillover_table(run_spillover(clients=args.clients))


def _cmd_coloring(args) -> str:
    from .experiments.coloring import render_coloring_table, run_coloring_sweep

    return render_coloring_table(run_coloring_sweep())


def _cmd_dnsload(args) -> str:
    from .experiments.dnsload import render_dns_load_table, run_dns_load

    return render_dns_load_table(run_dns_load(sessions=args.sessions))


def _cmd_failover(args) -> str:
    from .experiments.failover import FailoverConfig, render_failover_table, run_failover_pair

    config = FailoverConfig(ttl=args.ttl, probe_interval=args.probe_interval)
    return render_failover_table(run_failover_pair(config))


def _cmd_chaos(args) -> str:
    from .chaos import minimize_campaign, run_campaign
    from .experiments.chaos_soak import (
        ChaosSoakConfig,
        render_chaos_soak_table,
        run_chaos_soak,
    )

    if args.minimize:
        campaign = _load_campaign(args.minimize)
        try:
            result = minimize_campaign(campaign, invariant=args.invariant)
        except ValueError as exc:
            raise _CommandFailed(f"chaos --minimize: {exc}", 2)
        kinds = [spec.kind for spec in result.minimized.faults]
        lines = [
            f"campaign {campaign.name!r}: {len(campaign.faults)} fault(s) -> "
            f"{len(result.minimized.faults)} (invariant {result.invariant!r}, "
            f"{result.tests_run} replays)",
            f"minimal schedule: {', '.join(kinds)}",
            result.minimized.to_json(indent=2),
        ]
        output = "\n".join(lines)
        if args.expect_minimal is not None:
            expected = [k for k in args.expect_minimal.split(",") if k]
            if kinds != expected:
                raise _CommandFailed(
                    f"{output}\nexpected minimal schedule "
                    f"{', '.join(expected)} — got {', '.join(kinds)}", 1)
        return output

    if args.campaign:
        campaign = _load_campaign(args.campaign)
        result = run_campaign(campaign)
        output = _json_dumps(result.report())
        if result.violations:
            raise _CommandFailed(output, 1)
        return output

    from .chaos import ChaosConfig

    overrides = {"horizon": args.horizon, "clients_per_region": args.clients,
                 "num_sites": args.sites}
    chaos = ChaosConfig().apply(
        {k: v for k, v in overrides.items() if v is not None})
    soak = run_chaos_soak(
        ChaosSoakConfig(seed=args.seed, campaigns=args.campaigns, chaos=chaos))
    output = soak.reports_json() if args.json else render_chaos_soak_table(soak)
    if not soak.ok:
        raise _CommandFailed(output, 1)
    return output


def _cmd_campaign(args) -> str:
    from .campaign import (
        ReaddressingSpec,
        default_readdressing_spec,
        minimize_rollback_faults,
        run_readdressing,
    )

    if args.spec:
        try:
            with open(args.spec) as fh:
                spec = ReaddressingSpec.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise _CommandFailed(
                f"campaign: cannot load spec {args.spec!r}: {exc}", 2)
    else:
        spec = default_readdressing_spec()

    if args.minimize:
        chaos_campaign = _load_campaign(args.minimize)
        try:
            minimal = minimize_rollback_faults(chaos_campaign, spec)
        except ValueError as exc:
            raise _CommandFailed(f"campaign --minimize: {exc}", 2)
        kinds = [fault.kind for fault in minimal.faults]
        output = "\n".join([
            f"campaign {chaos_campaign.name!r}: {len(chaos_campaign.faults)} "
            f"fault(s) -> {len(minimal.faults)} (property: campaign rolls back)",
            f"minimal schedule: {', '.join(kinds)}",
            minimal.to_json(indent=2),
        ])
        if args.expect_minimal is not None:
            expected = [k for k in args.expect_minimal.split(",") if k]
            if kinds != expected:
                raise _CommandFailed(
                    f"{output}\nexpected minimal schedule "
                    f"{', '.join(expected)} — got {', '.join(kinds)}", 1)
        return output

    faults = ()
    if args.faults:
        faults = _load_campaign(args.faults).faults
    elif args.chaos:
        from .experiments.readdressing import background_faults

        faults = background_faults()

    result = run_readdressing(spec, seed=args.seed, faults=faults)
    if args.json:
        output = _json_dumps(result.report())
    else:
        campaign = result.readdressing
        lines = [
            f"campaign {campaign['name']!r} (policy {campaign['policy']!r}, "
            f"seed {args.seed}): {campaign['state']}",
        ]
        for step in campaign["steps"]:
            lines.append(
                f"  step {step['step']} {step['name']} [{step['kind']}] "
                f"{step['outcome'] or 'in flight'}: "
                f"drained={step['drained_completed']} "
                f"migrated={step['drained_migrated']} "
                f"dropped={len(step['dropped'])} holds={step['holds']}"
            )
        lines.append(
            f"availability {result.availability:.4f}, "
            f"{campaign['holds']} hold(s), {campaign['rollbacks']} rollback(s), "
            f"{len(result.violations)} violation(s)"
        )
        for violation in result.violations:
            lines.append(f"  VIOLATION {violation.invariant} at "
                         f"t={violation.at:g}: {violation.detail}")
        output = "\n".join(lines)
    if result.violations:
        raise _CommandFailed(output, 1)
    return output


def _load_campaign(path: str):
    from .chaos import Campaign
    from .faults import FaultConfigError

    try:
        with open(path) as fh:
            return Campaign.from_json(fh.read())
    except (OSError, ValueError, KeyError, FaultConfigError) as exc:
        raise _CommandFailed(f"chaos: cannot load campaign {path!r}: {exc}", 2)


def _json_dumps(document) -> str:
    import json

    return json.dumps(document, indent=2)


def _cmd_bgp(args) -> str:
    from .experiments.bgp_convergence import (
        BGPConvergenceConfig,
        render_bgp_table,
        run_bgp_convergence,
    )

    outcome = run_bgp_convergence(BGPConvergenceConfig(seed=args.seed))
    output = outcome.reports_json() if args.json else render_bgp_table(outcome)
    if not outcome.ok:
        raise _CommandFailed(output, 1)
    return output


def _cmd_scaling(args) -> str:
    from .experiments.sklookup_perf import render_scaling_table

    return render_scaling_table()


def _cmd_metrics(args) -> str:
    import json

    from .obs import diff_snapshots, render_diff, to_json, to_prometheus

    if args.diff:
        before_path, after_path = args.diff
        try:
            with open(before_path) as fh:
                before = json.load(fh)
            with open(after_path) as fh:
                after = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise _CommandFailed(f"metrics --diff: {exc}", 2)
        # Accept both bare registry snapshots and the documents this
        # command writes (metrics nested under a "metrics" key).
        before = before.get("metrics", before)
        after = after.get("metrics", after)
        header = f"metrics diff: {before_path} -> {after_path}"
        return f"{header}\n{render_diff(diff_snapshots(before, after))}"

    snapshot, traces = _collect_metrics(args.experiment)
    if args.format == "prom":
        output = to_prometheus(snapshot)
    else:
        document = {"experiment": args.experiment, "metrics": snapshot, "traces": traces}
        output = to_json(document)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(output + "\n")
        return (
            f"wrote {args.format} snapshot of '{args.experiment}' to {args.out} "
            f"({len(snapshot['counters'])} counters, "
            f"{len(snapshot['histograms'])} histograms)"
        )
    return output


def _collect_metrics(experiment: str) -> tuple[dict, dict]:
    """Run ``experiment`` instrumented; returns (snapshot, trace summary)."""
    from .obs import MetricsRegistry

    if experiment == "failover":
        from .experiments.failover import FailoverConfig, run_failover

        outcome = run_failover(FailoverConfig())
        mitigation = [
            {"trace": s.trace, "phase": s.phase, "start": s.start,
             "end": s.end, "duration": s.duration, "detail": s.detail}
            for s in outcome.tracer if s.trace.startswith("failover")
        ]
        traces = {
            "span_count": len(outcome.tracer),
            "phase_durations": outcome.tracer.phase_durations(),
            "mitigation_spans": mitigation,
        }
        return outcome.registry.snapshot(), traces

    from .experiments.ttl import run_ttl_experiment

    registry = MetricsRegistry()
    run_ttl_experiment(registry=registry)
    return registry.snapshot(), {}


def _cmd_serve(args) -> str:
    from .serve import run_oneshot, run_smoke
    from .serve.app import DEFAULT_SEED

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    if args.smoke or args.queries is not None:
        report = run_smoke(
            queries=args.queries if args.queries is not None else 50,
            workers=args.workers,
            bind=args.bind,
            seed=seed,
        )
        output = _json_dumps(report)
        if not report["ok"]:
            raise _CommandFailed(output, 1)
        return output

    if not args.oneshot:
        raise _CommandFailed(
            "serve: long-running mode is not wired into the reproduction "
            "harness; use --oneshot (demo both wire paths once) or "
            "--smoke/--queries N (CI soak)", 2)

    report = run_oneshot(bind=args.bind, workers=args.workers, seed=seed)
    plain, truncated = report["plain"], report["truncated"]
    lines = [
        f"; serving {report['address']} with {report['workers']} worker(s)",
        "",
        f";; QUESTION: {plain['question']}",
        f";; transport: {plain['transport']}  rcode: {plain['rcode']}",
        *(f"{plain['question'].split()[0]}  30  IN  A  {a}" for a in plain["addresses"]),
        "",
        f";; QUESTION: {truncated['question']}",
        f";; flags: TC on UDP -> retried over {truncated['transport']}",
        f";; answers: {truncated['answers']}/{truncated['expected_answers']} "
        "(complete over TCP)",
        "",
        ";; pool counters: " + ", ".join(
            f"{k}={v}" for k, v in sorted(report["counters"].items())
            if not k.startswith("latency")
        ),
        f";; verdict: {'ok' if report['ok'] else 'FAILED'}",
    ]
    output = "\n".join(lines)
    if not report["ok"]:
        raise _CommandFailed(output, 1)
    return output


def _cmd_check(args) -> str:
    from .check.cli import UnknownCheckerError, run_check

    try:
        output, code = run_check(
            config=args.config,
            lint=args.lint,
            no_lint=args.no_lint,
            strict=args.strict,
            no_deployment=args.no_deployment,
            only=args.only,
            symbolic=args.symbolic,
        )
    except UnknownCheckerError as exc:
        raise _CommandFailed(f"check: {exc}", 2)
    if code != 0:
        raise _CommandFailed(output, code)
    return output


def _cmd_plan(args) -> str:
    from .check.cli import run_plan

    output, code = run_plan(args.plan, strict=args.strict)
    if code != 0:
        raise _CommandFailed(output, code)
    return output


def _cmd_list(args) -> str:
    lines = ["available experiments:"]
    for name, (_, help_text) in sorted(_COMMANDS.items()):
        lines.append(f"  {name:<10} {help_text}")
    return "\n".join(lines)


_COMMANDS: dict[str, tuple[Callable, str]] = {
    "fig7": (_cmd_fig7, "Figure 7: per-IP load under static vs random addressing"),
    "fig8": (_cmd_fig8, "Figure 8: connection coalescing, one-IP vs rest-of-world"),
    "fig9": (_cmd_fig9, "Figure 9: anycast route-leak detection & mitigation"),
    "dos": (_cmd_dos, "§6: DoS k-ary search isolation"),
    "reduction": (_cmd_reduction, "§4.2: address-usage reduction table"),
    "ttl": (_cmd_ttl, "§4.4: binding lifetime vs resolver TTL behaviour"),
    "spillover": (_cmd_spillover, "§6: DC2 measurement (resolver/client mismatch)"),
    "coloring": (_cmd_coloring, "§6: map colouring for anycast traffic tuning"),
    "dnsload": (_cmd_dnsload, "§5.2: DNS-stress reduction under one-address"),
    "failover": (_cmd_failover, "§3.4/§4.4: failover recovery time vs BGP reconvergence"),
    "chaos": (_cmd_chaos, "§3.4/§6: seeded chaos campaigns vs control-plane invariants"),
    "campaign": (_cmd_campaign, "§4.2/§6: staged re-addressing campaign under traffic/chaos"),
    "bgp": (_cmd_bgp, "§4.4/§6: BGP convergence windows racing the DNS rebind"),
    "scaling": (_cmd_scaling, "Figure 4: socket-table scaling comparison"),
    "serve": (_cmd_serve, "real-socket authoritative frontend (UDP+TCP, pre-fork workers)"),
    "check": (_cmd_check, "static analysis: program verifier + control-plane + determinism lint"),
    "plan": (_cmd_plan, "symbolic pre-flight verification of a rebind-plan JSON file"),
    "metrics": (_cmd_metrics, "repro.obs: run an instrumented experiment, export metrics"),
    "list": (_cmd_list, "list available experiments"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from 'The Ties that un-Bind' (SIGCOMM 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig7", help=_COMMANDS["fig7"][1])
    p.add_argument("--sites", type=int, default=5_000)
    p.add_argument("--requests", type=int, default=100_000)
    p.add_argument("--zipf", type=float, default=1.1)

    p = sub.add_parser("fig8", help=_COMMANDS["fig8"][1])
    p.add_argument("--sessions", type=int, default=150)
    p.add_argument("--sites", type=int, default=300)

    p = sub.add_parser("fig9", help=_COMMANDS["fig9"][1])
    p.add_argument("--ttl", type=int, default=30)

    p = sub.add_parser("dos", help=_COMMANDS["dos"][1])
    p.add_argument("--n", type=int, default=1_000)
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--probe-ttl", type=int, default=5, dest="probe_ttl")
    p.add_argument("--initial-ttl", type=int, default=300, dest="initial_ttl")
    p.add_argument("--attack", choices=("l7", "l34"), default="l7")

    p = sub.add_parser("reduction", help=_COMMANDS["reduction"][1])
    p.add_argument("--hostnames", type=int, default=20_000_000)

    p = sub.add_parser("ttl", help=_COMMANDS["ttl"][1])
    p.add_argument("--ttl", type=int, default=30)

    p = sub.add_parser("spillover", help=_COMMANDS["spillover"][1])
    p.add_argument("--clients", type=int, default=40)

    sub.add_parser("coloring", help=_COMMANDS["coloring"][1])

    p = sub.add_parser("dnsload", help=_COMMANDS["dnsload"][1])
    p.add_argument("--sessions", type=int, default=120)

    p = sub.add_parser("failover", help=_COMMANDS["failover"][1])
    p.add_argument("--ttl", type=int, default=20)
    p.add_argument("--probe-interval", type=float, default=5.0, dest="probe_interval")

    p = sub.add_parser("chaos", help=_COMMANDS["chaos"][1])
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--campaigns", type=int, default=20)
    p.add_argument("--horizon", type=float, default=None,
                   help="simulated seconds per campaign (default 180)")
    p.add_argument("--clients", type=int, default=None,
                   help="clients per region (default 3)")
    p.add_argument("--sites", type=int, default=None,
                   help="hosted sites in the universe (default 12)")
    p.add_argument("--json", action="store_true",
                   help="emit per-campaign reports as JSON (deterministic bytes)")
    p.add_argument("--campaign", metavar="FILE", default=None,
                   help="replay one campaign JSON instead of generating; "
                        "exits non-zero if it violates any invariant")
    p.add_argument("--minimize", metavar="FILE", default=None,
                   help="delta-minimize the violating campaign in FILE")
    p.add_argument("--invariant", default=None,
                   help="with --minimize: which invariant to preserve")
    p.add_argument("--expect-minimal", dest="expect_minimal", default=None,
                   metavar="KINDS",
                   help="with --minimize: fail unless the minimal schedule "
                        "is exactly this comma-separated kind list")

    p = sub.add_parser("campaign", help=_COMMANDS["campaign"][1])
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--spec", metavar="FILE", default=None,
                   help="ReaddressingSpec JSON (default: the /20→/24→/32 "
                        "shrink drill); exits non-zero on any violation")
    p.add_argument("--chaos", action="store_true",
                   help="run the drill over E20's background fault schedule")
    p.add_argument("--faults", metavar="FILE", default=None,
                   help="chaos campaign JSON whose fault schedule fires "
                        "during the drill (overrides --chaos)")
    p.add_argument("--json", action="store_true",
                   help="emit the full run report as JSON (deterministic bytes)")
    p.add_argument("--minimize", metavar="FILE", default=None,
                   help="ddmin the fault schedule in FILE to the minimal "
                        "subset that still rolls the campaign back")
    p.add_argument("--expect-minimal", dest="expect_minimal", default=None,
                   metavar="KINDS",
                   help="with --minimize: fail unless the minimal schedule "
                        "is exactly this comma-separated kind list")

    p = sub.add_parser("bgp", help=_COMMANDS["bgp"][1])
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--json", action="store_true",
                   help="emit per-scenario reports as JSON (deterministic bytes)")

    sub.add_parser("scaling", help=_COMMANDS["scaling"][1])

    p = sub.add_parser("metrics", help=_COMMANDS["metrics"][1])
    p.add_argument("--experiment", choices=("ttl", "failover"), default="ttl",
                   help="which instrumented scenario produces the snapshot")
    p.add_argument("--format", choices=("json", "prom"), default="json",
                   help="JSON document (metrics + traces) or Prometheus text")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the export to FILE instead of stdout")
    p.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"), default=None,
                   help="compare two saved JSON snapshots instead of running")

    p = sub.add_parser("serve", help=_COMMANDS["serve"][1])
    p.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="bind spec; port 0 picks a free port (default %(default)s)")
    p.add_argument("--workers", type=int, default=1,
                   help="pre-fork workers sharing the port via SO_REUSEPORT")
    p.add_argument("--seed", type=int, default=None,
                   help="world seed (worker i uses seed+i)")
    p.add_argument("--oneshot", action="store_true",
                   help="answer one plain query and one forced-truncation "
                        "query over real sockets, print dig-style, exit")
    p.add_argument("--smoke", action="store_true",
                   help="CI soak: many queries incl. one forced-TC; JSON report")
    p.add_argument("--queries", type=int, default=None, metavar="N",
                   help="with --smoke: how many queries to send (implies --smoke)")

    p = sub.add_parser("check", help=_COMMANDS["check"][1])
    p.add_argument("config", nargs="?", default=None,
                   help="check-config JSON (default: verify the built-in deployment "
                        "and lint the repro package sources)")
    p.add_argument("--lint", action="append", default=None, metavar="PATH",
                   help="additional file/directory for the determinism lint")
    p.add_argument("--no-lint", action="store_true", dest="no_lint",
                   help="skip the determinism lint pass")
    p.add_argument("--no-deployment", action="store_true", dest="no_deployment",
                   help="without a config, skip building the default deployment "
                        "(lint-only run)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--symbolic", action="store_true",
                   help="add the exact packet-space passes (SK100/SK101)")
    p.add_argument("--only", action="append", default=None, metavar="NAME",
                   help="run only the named checker(s); unknown names exit 2")

    p = sub.add_parser("plan", help=_COMMANDS["plan"][1])
    p.add_argument("plan", metavar="FILE",
                   help="rebind-plan JSON (kind/policy plus active, pool, release)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on info findings too")

    sub.add_parser("list", help=_COMMANDS["list"][1])
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler, _ = _COMMANDS[args.command]
    try:
        print(handler(args))
    except _CommandFailed as failure:
        print(failure.output)
        return failure.code
    except BrokenPipeError:  # output piped into head/less that closed early
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
