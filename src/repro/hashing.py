"""Process-stable hashing for seeds and synthetic identities.

Python's builtin ``hash()`` is salted per process (PYTHONHASHSEED) for
str/bytes, so any RNG seeded from it — or any address derived from it —
differs between two runs of the *same* seeded simulation.  That breaks the
bit-reproducibility the whole clock/seed discipline exists for, and it is
exactly what the :mod:`repro.check` determinism lint's ``salted-hash`` rule
flags.  Everything in the simulator that needs "a number from a name" goes
through :func:`stable_hash` instead.
"""

from __future__ import annotations

__all__ = ["fnv1a64", "stable_hash"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: bytes) -> int:
    """64-bit FNV-1a over ``data``: tiny, dependency-free, run-stable."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def stable_hash(*parts: object) -> int:
    """A deterministic 64-bit hash of a tuple of simple values.

    Accepts strings, ints, floats, bools and ``None``; each part is folded
    into the digest with a type tag so ``("1",)`` and ``(1,)`` differ.
    Unlike ``hash()``, the result is identical in every process and on
    every platform, making it safe for RNG seeding and synthetic address
    derivation.
    """
    h = _FNV_OFFSET
    for part in parts:
        tagged = f"{type(part).__name__}:{part!r};"
        for byte in tagged.encode("utf-8"):
            h ^= byte
            h = (h * _FNV_PRIME) & _MASK
    return h
