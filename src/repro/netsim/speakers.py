"""Event-driven per-AS BGP speakers on the simulated clock.

The static :class:`~repro.netsim.bgp.BGPSimulation` jumps straight to the
Gao–Rexford fixpoint, which is the right model for steady state but erases
the regime the paper's robustness argument actually targets: the paper
motivates DNS-timescale agility by contrast with the ~150 s BGP withdrawal
convergence it measured (§6).  This module rebuilds the substrate as
*speakers*: every AS keeps RIB-in (one route per neighbor per prefix),
selects a best path locally, diffs its RIB-out per neighbor, and sends
UPDATE messages that arrive after a per-link propagation delay, rate-limited
by an MRAI-style per-session interval.  Between injection and quiescence the
network is genuinely inconsistent — catchments churn, withdrawn routes
linger, leaks spread hop by hop — and that window is what the chaos tier
measures DNS failover against.

Design notes:

* **Same fixpoint.**  Selection uses the same ``_preference_key`` as the
  static engine, and RIB-in holds at most one route per (prefix, neighbor),
  so the post-convergence catchment equals the static outcome — enforced by
  the :func:`oracle_mismatches` differential oracle.
* **Latest-state coalescing.**  Each (sender, receiver, prefix) edge
  carries a version counter; delivery drops messages whose version is
  stale.  This models MRAI batching (intermediate flaps within one MRAI
  slot are invisible) without replaying per-message history.
* **Two time bases.**  ``tick()`` drains events due at the shared
  :class:`~repro.clock.Clock` — the chaos loop's per-second heartbeat.
  ``settle()`` drains *everything* on a virtual time axis (used at build
  time and for end-of-run oracles) without touching the world clock;
  ``warm_reset()`` then re-arms the speaker for a run starting "now".
* **Flap damping.**  RFC-2439-shaped: withdrawals accumulate an
  exponentially decaying penalty per (prefix, neighbor); crossing the
  suppress threshold hides that neighbor's route from selection until the
  penalty decays below the reuse threshold, which is what contains a
  :class:`~repro.faults.routing.PersistentFlap` at its first upstream hop.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from ..clock import Clock
from .addr import IPAddress, Prefix
from .bgp import (
    Announcement,
    ASGraph,
    BGPSimulation,
    ExportPolicy,
    Route,
    RoutingTable,
    _preference_key,
    hash_to_unit,
)

__all__ = [
    "LinkProfile",
    "UpdateMessage",
    "ConvergenceTracker",
    "SpeakerSimulation",
    "oracle_mismatches",
]


@dataclass(frozen=True, slots=True)
class LinkProfile:
    """Per-link timing: propagation delay and the MRAI pacing interval.

    Delay is ``base + jitter * u`` where ``u`` is a deterministic hash of
    the directed link label — stable across runs and AS insertion orders,
    but different per link so convergence has realistic skew instead of a
    lock-step wavefront.
    """

    base_delay_s: float = 0.05
    jitter_s: float = 0.25
    mrai_s: float = 2.0

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0:
            raise ValueError("link base delay must be positive")
        if self.jitter_s < 0 or self.mrai_s < 0:
            raise ValueError("jitter and MRAI must be non-negative")

    def delay(self, sender: object, receiver: object) -> float:
        return self.base_delay_s + self.jitter_s * hash_to_unit(
            f"link-delay:{sender}->{receiver}"
        )


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """One UPDATE in flight: an announcement (``route``) or withdrawal
    (``route is None``) of ``prefix`` from ``sender`` to ``receiver``."""

    sender: object
    receiver: object
    prefix: Prefix
    route: Route | None
    version: int


class ConvergenceTracker:
    """Counters and convergence windows for one speaker simulation.

    A *window* opens when the first message enters an idle network and
    closes when the in-flight count returns to zero — the simulated span
    during which some RIB disagrees with the eventual fixpoint.  Windows,
    message counts, and catchment-churn events are the raw series behind
    the ``watch_speakers`` obs adapter and the convergence-aware chaos
    invariants.
    """

    def __init__(self, tracer=None) -> None:
        self.tracer = tracer
        #: Called with each closed window's duration (obs histograms hook in).
        self.observers: list[Callable[[float], None]] = []
        self.reset()

    def reset(self) -> None:
        """Zero all counters and series; observers and tracer survive."""
        self.announcements_sent = 0
        self.withdrawals_sent = 0
        self.delivered = 0
        self.coalesced = 0
        self.dropped = 0
        self.loops_rejected = 0
        self.best_path_changes = 0
        self.churn_events = 0
        self.suppressions = 0
        self.reuses = 0
        self.session_events = 0
        self.windows: list[tuple[float, float]] = []
        self.churn: list[tuple[float, object, object, object]] = []

    @property
    def messages_sent(self) -> int:
        return self.announcements_sent + self.withdrawals_sent

    def durations(self) -> list[float]:
        return [closed - opened for opened, closed in self.windows]

    def record_churn(
        self, at: float, asn: object, old_origin: object, new_origin: object
    ) -> None:
        """A best path flipped *origin* at ``asn`` — catchment churn."""
        self.churn_events += 1
        self.churn.append((at, asn, old_origin, new_origin))

    def window_closed(self, opened: float, closed: float) -> None:
        self.windows.append((opened, closed))
        duration = closed - opened
        for observer in self.observers:
            observer(duration)
        if self.tracer is not None:
            trace = self.tracer.next_trace_id("bgp")
            self.tracer.record(
                trace, "converge", opened, closed,
                detail=f"window {len(self.windows)}: {duration:.3f}s",
            )

    def snapshot(self) -> dict[str, int | float]:
        """Counter-shaped view (sorted keys) for obs collectors/reports."""
        durations = self.durations()
        return {
            "announcements_sent": self.announcements_sent,
            "best_path_changes": self.best_path_changes,
            "churn_events": self.churn_events,
            "coalesced": self.coalesced,
            "convergence_last_s": round(durations[-1], 6) if durations else 0.0,
            "convergence_total_s": round(sum(durations), 6),
            "convergence_windows": len(self.windows),
            "delivered": self.delivered,
            "dropped": self.dropped,
            "loops_rejected": self.loops_rejected,
            "messages_sent": self.messages_sent,
            "reuses": self.reuses,
            "session_events": self.session_events,
            "suppressions": self.suppressions,
            "withdrawals_sent": self.withdrawals_sent,
        }


@dataclass(slots=True)
class _Speaker:
    """Per-AS protocol state.  ``table`` aliases the simulation's loc-RIB
    for this AS, so the inherited LPM lookups read speaker output directly."""

    asn: object
    table: RoutingTable
    rib_in: dict[Prefix, dict[object, Route]] = field(default_factory=dict)
    local: dict[Prefix, Route] = field(default_factory=dict)
    rib_out: dict[object, dict[Prefix, Route]] = field(default_factory=dict)
    penalty: dict[tuple, tuple[float, float]] = field(default_factory=dict)
    suppressed: set[tuple] = field(default_factory=set)


class SpeakerSimulation(BGPSimulation):
    """Per-AS event-driven speakers over an :class:`ASGraph`.

    Drop-in for :class:`BGPSimulation` (same ``announce`` / ``withdraw`` /
    ``rib`` / ``forwarding_path`` / ``catchment`` surface) with time-aware
    semantics: ``converge()`` only drains events already due on the shared
    clock, so callers observe the *transient* state mid-convergence.  Extra
    surface: ``tick``/``settle``/``warm_reset``, per-session control
    (:meth:`set_session`), origination flapping (:meth:`start_flap`), and a
    ``delay_factor`` knob the ``slow_convergence`` gray fault scales.
    """

    incremental = True

    #: Flap-damping shape (RFC 2439 spirit): each withdrawal adds 1.0 of
    #: penalty; at ``SUPPRESS_THRESHOLD`` the neighbor's route is hidden
    #: from selection until exponential decay (``HALF_LIFE_S``) brings the
    #: penalty under ``REUSE_THRESHOLD``.
    SUPPRESS_THRESHOLD = 3.0
    REUSE_THRESHOLD = 1.5
    HALF_LIFE_S = 60.0

    def __init__(
        self,
        graph: ASGraph,
        clock: Clock | None = None,
        profile: LinkProfile | None = None,
        tracker: ConvergenceTracker | None = None,
    ) -> None:
        super().__init__(graph)
        self.clock = clock
        self.profile = profile or LinkProfile()
        self.tracker = tracker or ConvergenceTracker()
        #: Multiplier on link delays; the slow_convergence fault raises it.
        self.delay_factor = 1.0
        self._speakers = {
            asn: _Speaker(asn, table=self._ribs[asn]) for asn in graph.ases()
        }
        self._queue: list[tuple[float, int, tuple]] = []
        self._seq = itertools.count()
        self._vtime = 0.0
        self._versions: dict[tuple, int] = {}
        self._mrai_ready: dict[tuple, float] = {}
        self._down: set[tuple] = set()
        self._flaps: dict[tuple, float] = {}
        self._pending_msgs = 0
        self._window_open: float | None = None

    # -- time ----------------------------------------------------------------

    def _now(self) -> float:
        base = self.clock.now() if self.clock is not None else 0.0
        return max(base, self._vtime)

    def _push(self, at: float, event: tuple) -> None:
        heapq.heappush(self._queue, (at, next(self._seq), event))

    # -- configuration -------------------------------------------------------

    def set_export_policy(self, asn: object, policy: ExportPolicy | None) -> None:
        """Override one AS's export policy and re-advertise incrementally.

        Unlike the static engine, no ``reconverge_from_scratch`` is needed:
        the speaker re-diffs its RIB-out under the new policy and sends the
        resulting UPDATEs/withdrawals, which then propagate with real delays
        — a leak *spreads*, and a leak fix *heals*, over simulated time.
        """
        super().set_export_policy(asn, policy)
        self._refresh_exports(asn, self._now())

    def _refresh_exports(self, asn: object, at: float) -> None:
        speaker = self._speakers[asn]
        prefixes = set(speaker.table.prefixes())
        for table in speaker.rib_out.values():
            prefixes.update(table)
        for prefix in sorted(prefixes, key=str):
            self._export(asn, prefix, at)

    # -- originations --------------------------------------------------------

    def announce(self, announcement: Announcement) -> None:
        self._announce(announcement, self._now())

    def _announce(self, announcement: Announcement, at: float) -> None:
        if announcement.origin not in self.graph:
            raise KeyError(f"unknown origin AS {announcement.origin!r}")
        self._announcements.append(announcement)
        speaker = self._speakers[announcement.origin]
        speaker.local[announcement.prefix] = Route(
            announcement.prefix, announcement.origin, (), None
        )
        self._reselect(announcement.origin, announcement.prefix, at)

    def withdraw(self, prefix: Prefix, origin: object) -> None:
        """Withdraw an origination *incrementally*: the withdrawal message
        propagates hop by hop (route hunting included), unlike the static
        engine's recompute-from-scratch."""
        self._withdraw(prefix, origin, self._now())

    def _withdraw(self, prefix: Prefix, origin: object, at: float) -> None:
        self._announcements = [
            a for a in self._announcements
            if not (a.prefix == prefix and a.origin == origin)
        ]
        speaker = self._speakers[origin]
        if speaker.local.pop(prefix, None) is not None:
            self._reselect(origin, prefix, at)

    def announcements(self) -> list[Announcement]:
        return list(self._announcements)

    # -- selection and export ------------------------------------------------

    def _reselect(self, asn: object, prefix: Prefix, at: float) -> None:
        speaker = self._speakers[asn]
        candidates = []
        local = speaker.local.get(prefix)
        if local is not None:
            candidates.append(local)
        learned = speaker.rib_in.get(prefix)
        if learned:
            # Sorted neighbor order: selection must not depend on dict
            # insertion order (the key is total over distinct neighbors,
            # but iterate deterministically anyway).
            for neighbor in sorted(learned, key=str):
                if (prefix, neighbor) in speaker.suppressed:
                    continue
                candidates.append(learned[neighbor])
        old = speaker.table.best(prefix)
        best = max(candidates, key=_preference_key) if candidates else None
        if best == old:
            return
        if best is None:
            speaker.table.withdraw(prefix)
        else:
            speaker.table.replace(best)
        self.tracker.best_path_changes += 1
        old_origin = old.origin if old is not None else None
        new_origin = best.origin if best is not None else None
        if old_origin != new_origin:
            self.tracker.record_churn(at, asn, old_origin, new_origin)
        self._export(asn, prefix, at)

    def _export(self, asn: object, prefix: Prefix, at: float) -> None:
        speaker = self._speakers[asn]
        best = speaker.table.best(prefix)
        policy = self._policy(asn)
        for neighbor, rel_of_neighbor in sorted(
            self.graph.neighbors(asn).items(), key=lambda item: str(item[0])
        ):
            if self._session_key(asn, neighbor) in self._down:
                continue  # rib_out toward a down peer stays cleared
            advertised = None
            if best is not None:
                if neighbor in best.as_path or neighbor == best.origin:
                    self.tracker.loops_rejected += 1
                elif policy.allows(self.graph, asn, best, neighbor):
                    advertised = Route(
                        prefix=prefix,
                        origin=best.origin,
                        as_path=(asn, *best.as_path),
                        learned_from=rel_of_neighbor.inverse,
                    )
            out = speaker.rib_out.setdefault(neighbor, {})
            if advertised == out.get(prefix):
                continue  # peer already holds exactly this state
            if advertised is None:
                del out[prefix]
            else:
                out[prefix] = advertised
            self._send(asn, neighbor, prefix, advertised, at)

    def _send(
        self, sender: object, receiver: object, prefix: Prefix,
        route: Route | None, at: float,
    ) -> None:
        key = (sender, receiver, prefix)
        self._versions[key] = self._versions.get(key, 0) + 1
        pair = (sender, receiver)
        ready = max(at, self._mrai_ready.get(pair, 0.0))
        self._mrai_ready[pair] = ready + self.profile.mrai_s
        deliver = ready + self.profile.delay(sender, receiver) * self.delay_factor
        if route is None:
            self.tracker.withdrawals_sent += 1
        else:
            self.tracker.announcements_sent += 1
        if self._pending_msgs == 0 and self._window_open is None:
            self._window_open = at
        self._pending_msgs += 1
        self._push(
            deliver,
            ("msg", UpdateMessage(sender, receiver, prefix, route, self._versions[key])),
        )

    # -- delivery ------------------------------------------------------------

    def _process(self, event: tuple, at: float) -> None:
        kind = event[0]
        if kind == "msg":
            self._pending_msgs -= 1
            self._deliver(event[1], at)
        elif kind == "reuse":
            self._reuse(event[1], event[2], event[3], at)
        elif kind == "flap":
            self._flap_toggle(event[1], event[2], event[3], at)
        if self._pending_msgs == 0 and self._window_open is not None:
            self.tracker.window_closed(self._window_open, at)
            self._window_open = None

    def _deliver(self, msg: UpdateMessage, at: float) -> None:
        key = (msg.sender, msg.receiver, msg.prefix)
        if self._versions.get(key) != msg.version:
            self.tracker.coalesced += 1  # a newer state superseded this one
            return
        if self._session_key(msg.sender, msg.receiver) in self._down:
            self.tracker.dropped += 1  # session died while in flight
            return
        self.tracker.delivered += 1
        speaker = self._speakers[msg.receiver]
        learned = speaker.rib_in.setdefault(msg.prefix, {})
        if msg.route is None:
            if learned.pop(msg.sender, None) is None:
                return
            self._damp(speaker, msg.prefix, msg.sender, at)
        else:
            if msg.receiver in msg.route.as_path or msg.receiver == msg.route.origin:
                self.tracker.loops_rejected += 1  # receiver-side AS_PATH check
                return
            learned[msg.sender] = msg.route
        self._reselect(msg.receiver, msg.prefix, at)

    # -- flap damping --------------------------------------------------------

    def _decayed(self, speaker: _Speaker, key: tuple, at: float) -> float:
        value, last = speaker.penalty.get(key, (0.0, at))
        return value * 0.5 ** (max(0.0, at - last) / self.HALF_LIFE_S)

    def _damp(self, speaker: _Speaker, prefix: Prefix, neighbor: object, at: float) -> None:
        key = (prefix, neighbor)
        value = self._decayed(speaker, key, at) + 1.0
        speaker.penalty[key] = (value, at)
        if value >= self.SUPPRESS_THRESHOLD and key not in speaker.suppressed:
            speaker.suppressed.add(key)
            self.tracker.suppressions += 1
            wait = self.HALF_LIFE_S * math.log2(value / self.REUSE_THRESHOLD)
            self._push(at + wait, ("reuse", speaker.asn, prefix, neighbor))

    def _reuse(self, asn: object, prefix: Prefix, neighbor: object, at: float) -> None:
        speaker = self._speakers[asn]
        key = (prefix, neighbor)
        if key not in speaker.suppressed:
            return
        value = self._decayed(speaker, key, at)
        if value < self.REUSE_THRESHOLD:
            speaker.suppressed.discard(key)
            speaker.penalty.pop(key, None)
            self.tracker.reuses += 1
            self._reselect(asn, prefix, at)
        else:
            speaker.penalty[key] = (value, at)
            wait = self.HALF_LIFE_S * math.log2(value / self.REUSE_THRESHOLD)
            self._push(at + wait, ("reuse", asn, prefix, neighbor))

    # -- sessions ------------------------------------------------------------

    @staticmethod
    def _session_key(a: object, b: object) -> tuple:
        return (a, b) if str(a) <= str(b) else (b, a)

    def set_session(self, a: object, b: object, up: bool) -> None:
        """Tear down (``up=False``) or restore one BGP session.

        Down: both sides lose every route learned over the session
        immediately (notification semantics) and forget their RIB-out
        toward the peer; in-flight messages on the session are invalidated.
        Up: each side re-advertises its full table (the cleared RIB-out
        makes the export diff send everything).
        """
        if b not in self.graph.neighbors(a):
            raise KeyError(f"no link {a!r}<->{b!r} in the AS graph")
        key = self._session_key(a, b)
        now = self._now()
        if up == (key not in self._down):
            return  # already in the requested state
        self.tracker.session_events += 1
        for vkey in self._versions:
            if (vkey[0] == a and vkey[1] == b) or (vkey[0] == b and vkey[1] == a):
                self._versions[vkey] += 1  # strand in-flight messages
        if not up:
            self._down.add(key)
            for receiver, sender in ((a, b), (b, a)):
                self._speakers[sender].rib_out.pop(receiver, None)
                speaker = self._speakers[receiver]
                lost = sorted(
                    (p for p, learned in speaker.rib_in.items() if sender in learned),
                    key=str,
                )
                for prefix in lost:
                    del speaker.rib_in[prefix][sender]
                    self._reselect(receiver, prefix, now)
        else:
            self._down.discard(key)
            for sender in (a, b):
                speaker = self._speakers[sender]
                for prefix in sorted(speaker.table.prefixes(), key=str):
                    self._export(sender, prefix, now)

    # -- origination flapping ------------------------------------------------

    def start_flap(self, prefix: Prefix, origin: object, period_s: float) -> None:
        """Toggle the origination every ``period_s / 2`` until stopped."""
        if period_s <= 0:
            raise ValueError("flap period must be positive")
        if origin not in self.graph:
            raise KeyError(f"unknown origin AS {origin!r}")
        key = (prefix, origin)
        if key in self._flaps:
            return
        self._flaps[key] = period_s
        self._push(self._now() + period_s / 2, ("flap", prefix, origin, period_s))

    def stop_flap(self, prefix: Prefix, origin: object) -> None:
        """Stop flapping and leave the prefix announced (healed state)."""
        if self._flaps.pop((prefix, origin), None) is None:
            return
        if prefix not in self._speakers[origin].local:
            self._announce(Announcement(prefix, origin), self._now())

    def _flap_toggle(self, prefix: Prefix, origin: object, period_s: float, at: float) -> None:
        key = (prefix, origin)
        if key not in self._flaps:
            return  # stopped while the toggle was in flight
        if prefix in self._speakers[origin].local:
            self._withdraw(prefix, origin, at)
        else:
            self._announce(Announcement(prefix, origin), at)
        self._push(at + period_s / 2, ("flap", prefix, origin, period_s))

    def active_flaps(self) -> list[tuple]:
        return sorted(self._flaps, key=str)

    # -- driving -------------------------------------------------------------

    def tick(self) -> int:
        """Process every event due at or before the clock's current time."""
        now = self._now()
        processed = 0
        while self._queue and self._queue[0][0] <= now:
            at, _, event = heapq.heappop(self._queue)
            self._process(event, at)
            processed += 1
        return processed

    def converge(self, max_iterations: int = 10_000_000) -> int:
        """Drop-in for the static engine's ``converge``: drain what is due
        *now*.  Convergence beyond the current instant stays pending — that
        is the point of this engine."""
        return self.tick()

    def settle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue to quiescence on the virtual time axis.

        Active flaps are cancelled (they never quiesce); damping reuse
        timers run to completion.  The world clock is untouched — callers
        wanting to continue a live run afterwards use :meth:`warm_reset`.
        """
        self._flaps.clear()
        processed = 0
        while self._queue:
            processed += 1
            if processed > max_events:
                raise RuntimeError("speaker simulation did not settle")
            at, _, event = heapq.heappop(self._queue)
            if event[0] == "flap":
                continue
            self._vtime = max(self._vtime, at)
            self._process(event, at)
        return processed

    def warm_reset(self) -> None:
        """Re-arm a settled simulation for a live run starting at the clock.

        Build-time convergence (topology bring-up) should not count against
        run-time budgets: MRAI slots, damping penalties, and the tracker all
        reset, and virtual time snaps back to the clock.
        """
        if self._queue:
            raise RuntimeError("warm_reset requires a settled queue (call settle())")
        self._mrai_ready.clear()
        self._versions.clear()
        for speaker in self._speakers.values():
            speaker.penalty.clear()
            speaker.suppressed.clear()
        self._vtime = self.clock.now() if self.clock is not None else 0.0
        self._window_open = None
        self._pending_msgs = 0
        self.tracker.reset()

    def reconverge_from_scratch(self) -> None:
        """Rebuild all speaker state and re-originate, then settle.

        Kept for interface compatibility; sessions that are down stay down.
        """
        announcements = list(self._announcements)
        self._announcements = []
        self._ribs = {asn: RoutingTable() for asn in self.graph.ases()}
        self._speakers = {
            asn: _Speaker(asn, table=self._ribs[asn]) for asn in self.graph.ases()
        }
        self._queue.clear()
        self._versions.clear()
        self._mrai_ready.clear()
        self._flaps.clear()
        self._pending_msgs = 0
        self._window_open = None
        now = self._now()
        for ann in announcements:
            self._announce(ann, now)
        self.settle()

    def rebuilt(self, graph: ASGraph) -> "SpeakerSimulation":
        return type(self)(
            graph, clock=self.clock, profile=self.profile, tracker=self.tracker
        )

    # -- introspection -------------------------------------------------------

    def converging(self) -> bool:
        """True while UPDATE messages are still in flight."""
        return self._pending_msgs > 0

    def open_window_since(self) -> float | None:
        """Start of the currently open convergence window, if any."""
        return self._window_open

    def pending_messages(self) -> int:
        return self._pending_msgs

    def sessions_down(self) -> list[tuple]:
        return sorted(self._down, key=str)

    def suppressed_count(self) -> int:
        return sum(len(s.suppressed) for s in self._speakers.values())


def _static_chain_is_stale(
    static: BGPSimulation, client: object, address: IPAddress
) -> bool:
    """True when the static engine's answer at ``client`` rests on a
    *phantom* route — a path attribute some hop no longer holds.

    The work-queue engine is monotone install-if-better with no
    per-neighbor RIB-in, so when a neighbor replaces an earlier
    advertisement with a *worse* one, the receiver keeps the now-dead
    route.  At preference ties this leaves the static fixpoint
    self-inconsistent: the claimed AS path disagrees with what walking
    the hops would yield.  The differential oracle attributes such
    disagreements to the reference engine, not the speakers.
    """
    route = static.best_route(client, address)
    while route is not None and route.as_path:
        sender = route.as_path[0]
        held = static.best_route(sender, address)
        if (held is None or held.origin != route.origin
                or tuple(route.as_path[1:]) != tuple(held.as_path)):
            return True
        route = held
    return False


def oracle_mismatches(
    sim: SpeakerSimulation,
    clients: Iterable[object],
    addresses: Iterable[IPAddress],
) -> list[tuple[str, str, str, str]]:
    """Differential oracle: replay the speaker's announcements and policies
    through the static work-queue engine and compare catchments.

    Returns ``(client, address, event_driven_origin, static_origin)`` rows
    for every disagreement; empty means the settled speaker state *is* the
    Gao–Rexford fixpoint.  Only meaningful on a settled simulation with no
    sessions down, no suppressed routes, and no active flaps — the static
    engine cannot express those.

    Disagreements where the static engine's own route chain is stale
    (see :func:`_static_chain_is_stale`) are excluded: there the
    *reference* is self-inconsistent, and holding the speakers to it
    would institutionalize the reference's bug.
    """
    static = BGPSimulation(sim.graph)
    for asn, policy in sorted(sim.policies().items(), key=lambda item: str(item[0])):
        static.set_export_policy(asn, policy)
    for ann in sim.announcements():
        static.announce(ann)
    static.converge()
    clients = list(clients)
    mismatches: list[tuple[str, str, str, str]] = []
    for address in addresses:
        event_driven = sim.catchment(address, clients)
        fixed_point = static.catchment(address, clients)
        for client in clients:
            if event_driven[client] == fixed_point[client]:
                continue
            if _static_chain_is_stale(static, client, address):
                continue
            mismatches.append(
                (str(client), str(address),
                 str(event_driven[client]), str(fixed_point[client]))
            )
    return mismatches
