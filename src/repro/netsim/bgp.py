"""AS-level BGP substrate: topology, policy routing, RIBs, and LPM lookup.

The paper's §4.3 argues that randomized addressing is transparent to BGP
because "routing succeeds at the granularity of IP prefixes", and §6 builds
route-leak detection on anycast catchments (Figure 9).  Reproducing those
experiments needs an inter-domain routing model with:

* an AS graph annotated with business relationships (provider/customer and
  peer/peer),
* Gao–Rexford route selection and valley-free export filters,
* per-AS RIBs with longest-prefix-match lookup (so a /24 more-specific
  announced for mitigation beats a leaked /20),
* injectable misbehaviour: route leaks (an AS re-exporting a peer- or
  provider-learned route upward) and prefix hijacks.

The propagation algorithm is a work-queue fixpoint over a path-vector
abstraction.  Topologies in this repository are hundreds of ASes, for which
convergence takes milliseconds.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from .addr import IPAddress, Prefix

__all__ = [
    "Relationship",
    "ASGraph",
    "GraphConflictError",
    "Route",
    "Announcement",
    "RoutingTable",
    "BGPSimulation",
    "ExportPolicy",
    "GaoRexfordExport",
    "LeakingExport",
]


class GraphConflictError(ValueError):
    """Re-declaring an existing link with a different relationship.

    A silent overwrite here would flip provider/customer economics under an
    already-built topology — precisely the kind of misconfiguration the
    route-leak machinery *injects deliberately* — so accidental rewrites
    must be loud.  Pass ``replace=True`` to :meth:`ASGraph.add_link` when a
    relationship change is intended.
    """


class Relationship(enum.Enum):
    """How I regard a neighbor: they are my CUSTOMER, PEER, or PROVIDER."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    @property
    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


#: Gao–Rexford local preference: customer routes beat peer routes beat
#: provider routes, because customers pay.
_LOCAL_PREF = {
    Relationship.CUSTOMER: 3,
    Relationship.PEER: 2,
    Relationship.PROVIDER: 1,
}


class ASGraph:
    """An AS-level topology with annotated business relationships.

    AS identifiers are arbitrary hashable labels (ints for real ASNs,
    strings like ``"pop:lhr"`` for virtual PoP nodes in anycast scenarios).
    """

    def __init__(self) -> None:
        self._neighbors: dict[object, dict[object, Relationship]] = {}

    # -- construction ------------------------------------------------------

    def add_as(self, asn: object) -> None:
        self._neighbors.setdefault(asn, {})

    def add_link(
        self,
        a: object,
        b: object,
        rel_of_b_to_a: Relationship,
        replace: bool = False,
    ) -> None:
        """Add a link; ``rel_of_b_to_a`` is what *b is to a*.

        ``add_link(1, 2, Relationship.CUSTOMER)`` means AS 2 is AS 1's
        customer (so AS 1 is AS 2's provider).  Re-declaring an existing
        link with a *different* relationship raises
        :class:`GraphConflictError` unless ``replace=True``.
        """
        if a == b:
            raise ValueError("an AS cannot neighbor itself")
        self.add_as(a)
        self.add_as(b)
        existing = self._neighbors[a].get(b)
        if existing is not None and existing is not rel_of_b_to_a and not replace:
            raise GraphConflictError(
                f"conflicting relationship for link {a}<->{b}: "
                f"{existing.value} -> {rel_of_b_to_a.value} (pass replace=True if intended)"
            )
        self._neighbors[a][b] = rel_of_b_to_a
        self._neighbors[b][a] = rel_of_b_to_a.inverse

    def add_provider(self, asn: object, provider: object) -> None:
        """Declare ``provider`` as a provider of ``asn``."""
        self.add_link(asn, provider, Relationship.PROVIDER)

    def add_peering(self, a: object, b: object) -> None:
        self.add_link(a, b, Relationship.PEER)

    # -- queries -----------------------------------------------------------

    def ases(self) -> Iterator[object]:
        return iter(self._neighbors)

    def __len__(self) -> int:
        return len(self._neighbors)

    def __contains__(self, asn: object) -> bool:
        return asn in self._neighbors

    def neighbors(self, asn: object) -> dict[object, Relationship]:
        return dict(self._neighbors[asn])

    def relationship(self, asn: object, neighbor: object) -> Relationship:
        """What ``neighbor`` is to ``asn``."""
        return self._neighbors[asn][neighbor]

    def customers(self, asn: object) -> list[object]:
        return [n for n, r in self._neighbors[asn].items() if r is Relationship.CUSTOMER]

    def providers(self, asn: object) -> list[object]:
        return [n for n, r in self._neighbors[asn].items() if r is Relationship.PROVIDER]

    def peers(self, asn: object) -> list[object]:
        return [n for n, r in self._neighbors[asn].items() if r is Relationship.PEER]


@dataclass(frozen=True, slots=True)
class Route:
    """One path-vector route as held in an AS's RIB.

    ``as_path[0]`` is the neighbor the route was learned from; the last
    element is the origin.  A locally originated route has an empty path and
    ``learned_from`` of ``None``.
    """

    prefix: Prefix
    origin: object
    as_path: tuple[object, ...]
    learned_from: Relationship | None

    @property
    def path_len(self) -> int:
        return len(self.as_path)

    def local_pref(self) -> int:
        if self.learned_from is None:
            return 4  # our own origination wins over anything learned
        return _LOCAL_PREF[self.learned_from]


def _preference_key(route: Route) -> tuple:
    """Sort key: higher is better (local-pref desc, path length asc, tiebreak).

    The final AS-id string tiebreak stands in for lowest-router-id and keeps
    the simulation deterministic regardless of propagation order.
    """
    next_hop = route.as_path[0] if route.as_path else ""
    return (route.local_pref(), -route.path_len, -_stable_rank(next_hop))


def _stable_rank(label: object) -> float:
    # Deterministic total order across mixed int/str AS labels.
    return hash_to_unit(str(label))


def hash_to_unit(text: str) -> float:
    """Map a string to [0, 1) deterministically (FNV-1a based)."""
    h = 0xCBF29CE484222325
    for byte in text.encode():
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h / 2**64


class ExportPolicy:
    """Decides whether an AS re-advertises a route to a given neighbor."""

    def allows(
        self,
        graph: ASGraph,
        asn: object,
        route: Route,
        neighbor: object,
    ) -> bool:
        raise NotImplementedError


class GaoRexfordExport(ExportPolicy):
    """Valley-free exporting: customer routes go everywhere; peer- and
    provider-learned routes go only to customers."""

    def allows(self, graph, asn, route, neighbor) -> bool:
        if route.learned_from in (None, Relationship.CUSTOMER):
            return True
        return graph.relationship(asn, neighbor) is Relationship.CUSTOMER


class LeakingExport(ExportPolicy):
    """A misconfigured AS that re-exports routes it should keep to itself.

    Figure 9's incident: AS3 learns the anycasted prefix from a peer (or
    provider) and leaks it to another provider, pulling that provider's
    customer cone toward the wrong PoP.  ``leaked_prefixes`` limits the blast
    radius (real leaks are often a single prefix or config stanza); ``None``
    leaks everything.
    """

    def __init__(self, leaked_prefixes: Iterable[Prefix] | None = None) -> None:
        self._leaked = set(leaked_prefixes) if leaked_prefixes is not None else None
        self._fallback = GaoRexfordExport()

    def allows(self, graph, asn, route, neighbor) -> bool:
        if self._fallback.allows(graph, asn, route, neighbor):
            return True
        return self._leaked is None or route.prefix in self._leaked


@dataclass(frozen=True, slots=True)
class Announcement:
    """A prefix origination: ``origin`` advertises ``prefix`` into BGP."""

    prefix: Prefix
    origin: object


class RoutingTable:
    """One AS's RIB plus longest-prefix-match lookup over it."""

    def __init__(self) -> None:
        self._routes: dict[Prefix, Route] = {}
        # LPM index: lengths present, sorted descending, rebuilt lazily.
        self._lengths: list[int] | None = None

    def best(self, prefix: Prefix) -> Route | None:
        return self._routes.get(prefix)

    def install(self, route: Route) -> bool:
        """Install if better than (or replacing) the current best; returns
        True when the RIB changed."""
        cur = self._routes.get(route.prefix)
        if cur is not None and _preference_key(cur) >= _preference_key(route):
            return False
        self._routes[route.prefix] = route
        self._lengths = None
        return True

    def replace(self, route: Route) -> None:
        """Unconditionally set the best route for ``route.prefix``.

        The event-driven speakers (:mod:`repro.netsim.speakers`) select a
        best path *themselves* over RIB-in and only then publish it here, so
        the install-if-better comparison of :meth:`install` must not second-
        guess them — e.g. after the old best was withdrawn, the replacement
        is legitimately "worse" than what the table last saw.
        """
        self._routes[route.prefix] = route
        self._lengths = None

    def withdraw(self, prefix: Prefix) -> bool:
        if prefix in self._routes:
            del self._routes[prefix]
            self._lengths = None
            return True
        return False

    def prefixes(self) -> list[Prefix]:
        return list(self._routes)

    def lookup(self, address: IPAddress) -> Route | None:
        """Longest-prefix-match forwarding decision for ``address``."""
        if self._lengths is None:
            self._lengths = sorted({p.length for p in self._routes}, reverse=True)
        for length in self._lengths:
            if length > address.bits:
                continue  # a v6-only length cannot match a v4 address
            candidate = Prefix.of(address, length)
            route = self._routes.get(candidate)
            if route is not None:
                return route
        return None

    def __len__(self) -> int:
        return len(self._routes)


class BGPSimulation:
    """Propagate announcements over an :class:`ASGraph` to a fixpoint.

    Usage::

        sim = BGPSimulation(graph)
        sim.announce(Announcement(prefix, origin_asn))
        sim.converge()
        route = sim.rib(client_asn).lookup(address)

    Incremental: further ``announce``/``withdraw`` calls followed by
    ``converge`` update the fixpoint.  Export policies can be overridden
    per-AS (``set_export_policy``) to model leaks.
    """

    #: Instantaneous fixpoint engine: ``converge()`` reaches the final state
    #: in zero simulated time.  The event-driven speakers flip this to True.
    incremental = False

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._ribs: dict[object, RoutingTable] = {asn: RoutingTable() for asn in graph.ases()}
        self._policies: dict[object, ExportPolicy] = {}
        self._default_policy: ExportPolicy = GaoRexfordExport()
        self._announcements: list[Announcement] = []
        self._dirty: deque[object] = deque()
        self._dirty_set: set[object] = set()

    # -- configuration -----------------------------------------------------

    def set_export_policy(self, asn: object, policy: ExportPolicy | None) -> None:
        """Override (or with ``None``, reset) one AS's export policy.

        Changing a policy requires re-propagation; callers normally follow
        with :meth:`reconverge_from_scratch` because BGP withdraw dynamics
        are not modelled incrementally here.
        """
        if asn not in self.graph:
            raise KeyError(f"unknown AS {asn!r}")
        if policy is None:
            self._policies.pop(asn, None)
        else:
            self._policies[asn] = policy

    def _policy(self, asn: object) -> ExportPolicy:
        return self._policies.get(asn, self._default_policy)

    def policies(self) -> dict[object, ExportPolicy]:
        """Per-AS export-policy overrides currently in force."""
        return dict(self._policies)

    # -- announcements -----------------------------------------------------

    def announce(self, announcement: Announcement) -> None:
        if announcement.origin not in self.graph:
            raise KeyError(f"unknown origin AS {announcement.origin!r}")
        self._announcements.append(announcement)
        route = Route(announcement.prefix, announcement.origin, (), None)
        if self._ribs[announcement.origin].install(route):
            self._mark_dirty(announcement.origin)

    def withdraw(self, prefix: Prefix, origin: object) -> None:
        """Remove an origination and rebuild the fixpoint.

        Path-vector withdraw dynamics (route hunting) are out of scope; we
        recompute from the surviving announcement set, which yields the same
        final state.
        """
        self._announcements = [
            a for a in self._announcements if not (a.prefix == prefix and a.origin == origin)
        ]
        self.reconverge_from_scratch()

    def reconverge_from_scratch(self) -> None:
        """Clear all RIBs and re-propagate every surviving announcement."""
        self._ribs = {asn: RoutingTable() for asn in self.graph.ases()}
        self._dirty.clear()
        self._dirty_set.clear()
        pending, self._announcements = self._announcements, []
        for ann in pending:
            self.announce(ann)
        self.converge()

    def rebuilt(self, graph: ASGraph) -> "BGPSimulation":
        """A fresh simulation of the same engine flavour over ``graph``.

        Subclasses carrying extra wiring (clock, link profile, tracker)
        override this so topology edits — e.g. attaching a leaker AS —
        preserve the engine configuration.
        """
        return type(self)(graph)

    # -- propagation -------------------------------------------------------

    def _mark_dirty(self, asn: object) -> None:
        if asn not in self._dirty_set:
            self._dirty_set.add(asn)
            self._dirty.append(asn)

    def converge(self, max_iterations: int = 10_000_000) -> int:
        """Run the work-queue to fixpoint; returns processing steps used."""
        steps = 0
        while self._dirty:
            steps += 1
            if steps > max_iterations:
                raise RuntimeError("BGP propagation did not converge")
            asn = self._dirty.popleft()
            self._dirty_set.discard(asn)
            rib = self._ribs[asn]
            policy = self._policy(asn)
            for prefix in rib.prefixes():
                route = rib.best(prefix)
                if route is None:  # pragma: no cover - defensive
                    continue
                for neighbor, rel_of_neighbor in self.graph.neighbors(asn).items():
                    if neighbor in route.as_path or neighbor == route.origin:
                        continue  # loop prevention
                    if not policy.allows(self.graph, asn, route, neighbor):
                        continue
                    advertised = Route(
                        prefix=route.prefix,
                        origin=route.origin,
                        as_path=(asn, *route.as_path),
                        # from the neighbor's perspective, we are the inverse
                        learned_from=rel_of_neighbor.inverse,
                    )
                    if self._ribs[neighbor].install(advertised):
                        self._mark_dirty(neighbor)
        return steps

    # -- lookups -----------------------------------------------------------

    def rib(self, asn: object) -> RoutingTable:
        return self._ribs[asn]

    def best_route(self, asn: object, address: IPAddress) -> Route | None:
        """LPM forwarding decision at ``asn`` for ``address``."""
        return self._ribs[asn].lookup(address)

    def forwarding_path(self, asn: object, address: IPAddress) -> list[object] | None:
        """AS-level path the packet follows, ending at the route's origin.

        Follows the per-hop LPM decision (hops may diverge from the first
        AS's path attribute when more-specifics exist upstream).  Returns
        ``None`` when some hop has no route.
        """
        if asn not in self._ribs:
            return None  # unknown AS: nowhere to forward from
        path = [asn]
        current = asn
        for _ in range(len(self.graph) + 1):
            route = self._ribs[current].lookup(address)
            if route is None:
                return None
            if not route.as_path:  # we are at the origin
                return path
            next_hop = route.as_path[0]
            path.append(next_hop)
            current = next_hop
        raise RuntimeError("forwarding loop detected")  # pragma: no cover

    def catchment(self, address: IPAddress, clients: Iterable[object]) -> dict[object, object]:
        """Map each client AS to the origin its traffic for ``address`` reaches.

        With an anycast prefix (several origins announcing the same prefix)
        this is the anycast catchment; clients with no route map to ``None``.
        """
        result: dict[object, object] = {}
        for client in clients:
            path = self.forwarding_path(client, address)
            result[client] = path[-1] if path else None
        return result
