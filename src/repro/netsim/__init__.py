"""Network substrate: addresses, packets, geography, BGP, anycast, leaks."""

from .addr import IPAddress, IPv4, IPv6, Prefix, parse_address, parse_prefix
from .anycast import AnycastNetwork, PoP, build_regional_topology
from .bgp import (
    Announcement,
    ASGraph,
    BGPSimulation,
    GaoRexfordExport,
    GraphConflictError,
    LeakingExport,
    Relationship,
    Route,
    RoutingTable,
)
from .geo import WELL_KNOWN_CITIES, GeoPoint, great_circle_km, propagation_rtt_ms
from .packet import FiveTuple, FlowRecord, Packet, Protocol
from .routeleak import (
    CatchmentShift,
    LeakScenario,
    diff_catchments,
    inject_hijack,
    inject_route_leak,
)
from .speakers import (
    ConvergenceTracker,
    LinkProfile,
    SpeakerSimulation,
    UpdateMessage,
    oracle_mismatches,
)

__all__ = [
    "IPAddress",
    "IPv4",
    "IPv6",
    "Prefix",
    "parse_address",
    "parse_prefix",
    "AnycastNetwork",
    "PoP",
    "build_regional_topology",
    "Announcement",
    "ASGraph",
    "BGPSimulation",
    "GaoRexfordExport",
    "LeakingExport",
    "Relationship",
    "Route",
    "RoutingTable",
    "WELL_KNOWN_CITIES",
    "GeoPoint",
    "great_circle_km",
    "propagation_rtt_ms",
    "FiveTuple",
    "FlowRecord",
    "Packet",
    "Protocol",
    "CatchmentShift",
    "LeakScenario",
    "diff_catchments",
    "inject_hijack",
    "inject_route_leak",
    "GraphConflictError",
    "ConvergenceTracker",
    "LinkProfile",
    "SpeakerSimulation",
    "UpdateMessage",
    "oracle_mismatches",
]
