"""Anycast network construction and catchment computation.

Cloudflare "uses anycast — not just for DNS service — but for all of its web
services" (§4.1): every PoP announces the same prefixes, and BGP decides
which PoP a client's packets reach (its *catchment*).  The §6 route-leak
detector rests entirely on catchments: each PoP's DNS hands out a distinct
address inside the shared prefix, so traffic arriving at a PoP on another
PoP's address reveals that routing and DNS disagree.

:class:`AnycastNetwork` assembles a synthetic but structurally realistic
inter-domain topology: PoPs connected to regional transit ASes, client
(eyeball) ASes hanging off regional transits, and a small clique-ish core of
tier-1s gluing regions together.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .addr import IPAddress, Prefix
from .bgp import Announcement, ASGraph, BGPSimulation
from .geo import WELL_KNOWN_CITIES, GeoPoint, propagation_rtt_ms

__all__ = ["PoP", "AnycastNetwork", "build_regional_topology"]


@dataclass(frozen=True, slots=True)
class PoP:
    """A point of presence: a datacenter that originates anycast prefixes.

    In the AS graph a PoP is a virtual stub node (label ``"pop:<name>"``)
    multihomed to its region's transit ASes — the same modelling trick used
    in anycast catchment studies: one origin AS, many announcement points,
    each point a distinct node so BGP path selection distinguishes them.
    """

    name: str
    region: str
    location: GeoPoint

    @property
    def node(self) -> str:
        return f"pop:{self.name}"


@dataclass(slots=True)
class _Region:
    name: str
    transits: list[object] = field(default_factory=list)
    clients: list[object] = field(default_factory=list)


class AnycastNetwork:
    """A multi-PoP anycast deployment over a BGP substrate.

    Parameters
    ----------
    graph, pops, client_locations:
        Usually produced by :func:`build_regional_topology`; hand-built
        graphs are fine for targeted tests.
    """

    def __init__(
        self,
        graph: ASGraph,
        pops: list[PoP],
        client_locations: dict[object, GeoPoint] | None = None,
    ) -> None:
        if not pops:
            raise ValueError("an anycast network needs at least one PoP")
        names = [p.name for p in pops]
        if len(set(names)) != len(names):
            raise ValueError("duplicate PoP names")
        self.graph = graph
        self.pops = {p.name: p for p in pops}
        self.client_locations = dict(client_locations or {})
        self.sim = BGPSimulation(graph)
        self._announced: dict[Prefix, set[str]] = {}

    def use_simulation(self, sim: BGPSimulation) -> None:
        """Swap the BGP engine (e.g. for an event-driven
        :class:`~repro.netsim.speakers.SpeakerSimulation`), replaying any
        announcements already made into the new engine."""
        if sim.graph is not self.graph:
            raise ValueError("replacement engine must be built over this network's graph")
        announced = self.announced_prefixes()
        self.sim = sim
        self._announced.clear()
        for prefix in sorted(announced, key=str):
            self.announce_from(prefix, sorted(announced[prefix]))

    # -- announcements -----------------------------------------------------

    def announce_from_all(self, prefix: Prefix) -> None:
        """Anycast ``prefix``: originate it at every PoP."""
        self.announce_from(prefix, list(self.pops))

    def announce_from(self, prefix: Prefix, pop_names: list[str]) -> None:
        for name in pop_names:
            pop = self.pops[name]
            self.sim.announce(Announcement(prefix, pop.node))
            self._announced.setdefault(prefix, set()).add(name)
        self.sim.converge()

    def withdraw_from(self, prefix: Prefix, pop_name: str) -> None:
        pop = self.pops[pop_name]
        self.sim.withdraw(prefix, pop.node)
        names = self._announced.get(prefix)
        if names:
            names.discard(pop_name)
            if not names:
                del self._announced[prefix]

    def announced_prefixes(self) -> dict[Prefix, set[str]]:
        return {p: set(names) for p, names in self._announced.items()}

    # -- catchments ----------------------------------------------------------

    def client_ases(self) -> list[object]:
        """All ASes that are not PoP nodes (transit + eyeball)."""
        return [a for a in self.graph.ases() if not str(a).startswith("pop:")]

    def pop_for(self, client_asn: object, address: IPAddress) -> str | None:
        """Which PoP receives ``client_asn``'s packets to ``address``."""
        path = self.sim.forwarding_path(client_asn, address)
        if not path:
            return None
        last = str(path[-1])
        if last.startswith("pop:"):
            return last[len("pop:"):]
        return None

    def catchment(self, address: IPAddress, clients: list[object] | None = None) -> dict[object, str | None]:
        """Catchment map for ``address`` over ``clients`` (default: all)."""
        clients = clients if clients is not None else self.client_ases()
        return {c: self.pop_for(c, address) for c in clients}

    def client_rtt_ms(self, client_asn: object, pop_name: str) -> float:
        """RTT estimate from a client AS to a PoP (needs geo annotations)."""
        loc = self.client_locations.get(client_asn)
        if loc is None:
            raise KeyError(f"no location recorded for client AS {client_asn!r}")
        return propagation_rtt_ms(loc, self.pops[pop_name].location)

    def rtt_to(self, client_asn: object, address: IPAddress) -> float | None:
        """RTT the client experiences reaching ``address`` via its current
        catchment; ``None`` if unrouted or the client has no location."""
        pop = self.pop_for(client_asn, address)
        if pop is None or client_asn not in self.client_locations:
            return None
        return self.client_rtt_ms(client_asn, pop)

    def mean_rtt_ms(self, address: IPAddress, clients: list[object] | None = None) -> float:
        """Mean client RTT to ``address`` over located, routed clients.

        The quality metric behind Figure 9's "performance degrades for US
        clients routed to Europe": a leak that flips catchments shows up
        directly as a jump in this number.
        """
        clients = clients if clients is not None else list(self.client_locations)
        rtts = [rtt for c in clients if (rtt := self.rtt_to(c, address)) is not None]
        if not rtts:
            raise ValueError("no located, routed clients to average over")
        return sum(rtts) / len(rtts)


def build_regional_topology(
    regions: dict[str, list[str]],
    clients_per_region: int = 8,
    transits_per_region: int = 2,
    rng: random.Random | None = None,
) -> AnycastNetwork:
    """Build a synthetic multi-region anycast topology.

    ``regions`` maps a region name to the cities (keys of
    :data:`~repro.netsim.geo.WELL_KNOWN_CITIES`) hosting a PoP there, e.g.
    ``{"us": ["ashburn", "chicago"], "eu": ["london", "frankfurt"]}``.

    Structure (per region): ``transits_per_region`` transit ASes, each a
    customer of every tier-1; each PoP *peers* with all its region's
    transits — the settlement-free interconnection CDNs favour, and the
    arrangement Figure 9 depicts ("CDN originates an anycasted prefix from
    multiple PoPs to regional peers") — and buys transit from one tier-1
    for global reachability; ``clients_per_region`` eyeball ASes are each a
    customer of one regional transit.  Tier-1s form a full peering mesh.

    The peer-not-customer detail is what makes route leaks bite: a transit
    normally holds a PEER-preference route to its regional PoP, so a leaked
    route arriving from one of its *customers* wins on local-pref — the
    exact "preferring customer routes" failure of Figure 9.
    """
    rng = rng or random.Random(0)
    if not regions:
        raise ValueError("need at least one region")
    graph = ASGraph()

    tier1s = [f"t1:{i}" for i in range(max(2, len(regions)))]
    for i, a in enumerate(tier1s):
        for b in tier1s[i + 1:]:
            graph.add_peering(a, b)

    pops: list[PoP] = []
    client_locations: dict[object, GeoPoint] = {}
    for region, cities in regions.items():
        if not cities:
            raise ValueError(f"region {region!r} has no PoP cities")
        transits = [f"transit:{region}:{i}" for i in range(transits_per_region)]
        for t in transits:
            for t1 in tier1s:
                graph.add_provider(t, t1)
        # Regional transits peer with each other (keeps intra-region local).
        for i, a in enumerate(transits):
            for b in transits[i + 1:]:
                graph.add_peering(a, b)
        for city in cities:
            if city not in WELL_KNOWN_CITIES:
                raise KeyError(f"unknown city {city!r}")
            pop = PoP(name=city, region=region, location=WELL_KNOWN_CITIES[city])
            pops.append(pop)
            for t in transits:
                graph.add_peering(pop.node, t)
            # Transit of last resort keeps far regions reachable even when
            # no nearby PoP announces a prefix.
            graph.add_provider(pop.node, tier1s[0])
        region_cities = [WELL_KNOWN_CITIES[c] for c in cities]
        for i in range(clients_per_region):
            client = f"eyeball:{region}:{i}"
            graph.add_provider(client, rng.choice(transits))
            # Clients scatter near one of the region's PoP cities.
            near = rng.choice(region_cities)
            jitter_lat = max(-90.0, min(90.0, near.lat + rng.uniform(-3, 3)))
            jitter_lon = max(-180.0, min(180.0, near.lon + rng.uniform(-3, 3)))
            client_locations[client] = GeoPoint(client, jitter_lat, jitter_lon)

    return AnycastNetwork(graph, pops, client_locations)
