"""Integer-backed IP address and prefix algebra.

The paper's core mechanism — "given a prefix of length ``b``, generate a
random bitstring of ``32 - b`` (IPv4) or ``128 - b`` (IPv6) and respond with
the concatenation" (§3.2) — is executed on every DNS query.  At the
deployment's rates (thousands of answers per second) the address math sits
on the hot path, so this module represents addresses as plain integers with
a family tag rather than wrapping :mod:`ipaddress` objects.  Conversions to
and from dotted-quad / RFC 5952 text exist for presentation and parsing
only.

Everything here is a value type: hashable, ordered within a family, and
immutable.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from collections.abc import Iterator

__all__ = [
    "IPv4",
    "IPv6",
    "IPAddress",
    "Prefix",
    "AddressFamilyError",
    "parse_address",
    "parse_prefix",
]

#: Address family constants, matching socket.AF_* spirit without importing
#: the socket module (this is a simulator; no real sockets are opened).
IPv4 = 4
IPv6 = 6

_BITS = {IPv4: 32, IPv6: 128}
_MAX = {IPv4: (1 << 32) - 1, IPv6: (1 << 128) - 1}


class AddressFamilyError(ValueError):
    """Raised when IPv4 and IPv6 values are mixed, or a family tag is bad."""


def _check_family(family: int) -> int:
    if family not in _BITS:
        raise AddressFamilyError(f"unknown address family: {family!r}")
    return family


@dataclass(frozen=True, slots=True, order=False)
class IPAddress:
    """A single IP address: an integer plus a family tag.

    >>> a = IPAddress.from_text("192.0.2.1")
    >>> a.family, a.value
    (4, 3221225985)
    >>> str(a)
    '192.0.2.1'
    """

    family: int
    value: int

    def __post_init__(self) -> None:
        _check_family(self.family)
        if not 0 <= self.value <= _MAX[self.family]:
            raise ValueError(
                f"address value {self.value:#x} out of range for IPv{self.family}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "IPAddress":
        """Parse dotted-quad IPv4 or RFC 4291 IPv6 text."""
        addr = ipaddress.ip_address(text)
        family = IPv4 if addr.version == 4 else IPv6
        return cls(family, int(addr))

    @classmethod
    def v4(cls, value: int) -> "IPAddress":
        return cls(IPv4, value)

    @classmethod
    def v6(cls, value: int) -> "IPAddress":
        return cls(IPv6, value)

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:
        if self.family == IPv4:
            return str(ipaddress.IPv4Address(self.value))
        return str(ipaddress.IPv6Address(self.value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IPAddress({str(self)!r})"

    # -- ordering (within a family) ----------------------------------------

    def _cmp_key(self) -> tuple[int, int]:
        return (self.family, self.value)

    def __lt__(self, other: "IPAddress") -> bool:
        if not isinstance(other, IPAddress):
            return NotImplemented
        return self._cmp_key() < other._cmp_key()

    def __le__(self, other: "IPAddress") -> bool:
        if not isinstance(other, IPAddress):
            return NotImplemented
        return self._cmp_key() <= other._cmp_key()

    # -- packing (used by the DNS wire codec) ------------------------------

    @property
    def bits(self) -> int:
        """Address width in bits (32 or 128)."""
        return _BITS[self.family]

    def packed(self) -> bytes:
        """Network byte order bytes: 4 for IPv4, 16 for IPv6."""
        return self.value.to_bytes(self.bits // 8, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "IPAddress":
        if len(data) == 4:
            return cls(IPv4, int.from_bytes(data, "big"))
        if len(data) == 16:
            return cls(IPv6, int.from_bytes(data, "big"))
        raise ValueError(f"packed address must be 4 or 16 bytes, got {len(data)}")


@dataclass(frozen=True, slots=True)
class Prefix:
    """A CIDR prefix: the address pool abstraction of §3.2.

    A prefix with length ``b`` holds ``2**(bits - b)`` addresses.  The paper
    assigns a prefix to a *policy*; answering a query means drawing a random
    suffix and concatenating (:meth:`random_address`).

    >>> p = Prefix.from_text("192.0.2.0/24")
    >>> p.num_addresses
    256
    >>> p.contains(IPAddress.from_text("192.0.2.77"))
    True
    """

    family: int
    network: int
    length: int

    def __post_init__(self) -> None:
        _check_family(self.family)
        bits = _BITS[self.family]
        if not 0 <= self.length <= bits:
            raise ValueError(f"prefix length {self.length} out of range for IPv{self.family}")
        if self.network & self.host_mask():
            raise ValueError(
                f"network {self.network:#x} has host bits set for /{self.length}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` or ``xx::/len`` text (strict: no host bits)."""
        net = ipaddress.ip_network(text, strict=True)
        family = IPv4 if net.version == 4 else IPv6
        return cls(family, int(net.network_address), net.prefixlen)

    @classmethod
    def of(cls, address: IPAddress, length: int) -> "Prefix":
        """The /length prefix containing ``address``."""
        bits = _BITS[address.family]
        if not 0 <= length <= bits:
            raise ValueError(f"prefix length {length} out of range")
        mask = ((1 << length) - 1) << (bits - length) if length else 0
        return cls(address.family, address.value & mask, length)

    @classmethod
    def host(cls, address: IPAddress) -> "Prefix":
        """The single-address (/32 or /128) prefix for ``address``."""
        return cls(address.family, address.value, _BITS[address.family])

    # -- geometry ----------------------------------------------------------

    @property
    def bits(self) -> int:
        return _BITS[self.family]

    @property
    def suffix_bits(self) -> int:
        """Number of free host bits — the paper's random bitstring width."""
        return self.bits - self.length

    @property
    def num_addresses(self) -> int:
        return 1 << self.suffix_bits

    def net_mask(self) -> int:
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << self.suffix_bits

    def host_mask(self) -> int:
        return (1 << self.suffix_bits) - 1

    @property
    def first(self) -> IPAddress:
        return IPAddress(self.family, self.network)

    @property
    def last(self) -> IPAddress:
        return IPAddress(self.family, self.network | self.host_mask())

    # -- membership & relations --------------------------------------------

    def contains(self, item: "IPAddress | Prefix") -> bool:
        """True if an address, or an entire sub-prefix, lies inside us."""
        if isinstance(item, IPAddress):
            if item.family != self.family:
                return False
            return (item.value & self.net_mask()) == self.network
        if isinstance(item, Prefix):
            if item.family != self.family or item.length < self.length:
                return False
            return (item.network & self.net_mask()) == self.network
        raise TypeError(f"cannot test containment of {type(item).__name__}")

    def __contains__(self, item: "IPAddress | Prefix") -> bool:
        return self.contains(item)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        if other.family != self.family:
            return False
        return self.contains(other.first) or other.contains(self.first)

    # -- address generation (the §3.2 mechanism) ----------------------------

    def random_address(self, rng: random.Random) -> IPAddress:
        """Draw one uniform random address from the pool.

        This is step (4)+(5) of the paper's DNS procedure: generate a random
        bitstring of ``suffix_bits`` bits and append it to the prefix.  For a
        /32 (or /128) pool this degenerates to the single address — the §5
        "one address to serve them all" configuration — with no special case.
        """
        suffix = rng.getrandbits(self.suffix_bits) if self.suffix_bits else 0
        return IPAddress(self.family, self.network | suffix)

    def address_at(self, index: int) -> IPAddress:
        """The ``index``-th address in the pool (0-based); supports negatives."""
        n = self.num_addresses
        if not -n <= index < n:
            raise IndexError(f"index {index} out of range for /{self.length} pool")
        return IPAddress(self.family, self.network | (index % n))

    def index_of(self, address: IPAddress) -> int:
        """Inverse of :meth:`address_at`; raises if outside the pool."""
        if not self.contains(address):
            raise ValueError(f"{address} is not in {self}")
        return address.value & self.host_mask()

    def addresses(self) -> Iterator[IPAddress]:
        """Iterate every address in the pool. Refuses pools wider than 2^20."""
        if self.suffix_bits > 20:
            raise ValueError(
                f"refusing to enumerate 2^{self.suffix_bits} addresses; "
                "use random_address or address_at"
            )
        for i in range(self.num_addresses):
            yield IPAddress(self.family, self.network | i)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Split into sub-prefixes of ``new_length`` (must not be shorter)."""
        if new_length < self.length:
            raise ValueError(f"cannot split /{self.length} into shorter /{new_length}")
        if new_length > self.bits:
            raise ValueError(f"/{new_length} longer than address width")
        if new_length - self.length > 20:
            raise ValueError("refusing to enumerate more than 2^20 subnets")
        step = 1 << (self.bits - new_length)
        for i in range(1 << (new_length - self.length)):
            yield Prefix(self.family, self.network + i * step, new_length)

    def supernet(self, new_length: int) -> "Prefix":
        """The enclosing prefix of ``new_length`` (must not be longer)."""
        if new_length > self.length:
            raise ValueError(f"supernet /{new_length} longer than /{self.length}")
        return Prefix.of(self.first, new_length)

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:
        return f"{IPAddress(self.family, self.network)}/{self.length}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Prefix({str(self)!r})"


def parse_address(text: str) -> IPAddress:
    """Module-level convenience alias for :meth:`IPAddress.from_text`."""
    return IPAddress.from_text(text)


def parse_prefix(text: str) -> Prefix:
    """Module-level convenience alias for :meth:`Prefix.from_text`."""
    return Prefix.from_text(text)
