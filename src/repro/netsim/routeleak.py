"""Route-leak and hijack injection over the BGP substrate.

Figure 9 of the paper describes an actual incident: a CDN originates an
anycasted prefix from multiple PoPs; AS3, "preferring customer routes",
leaks the prefix to AS2; US clients are routed to Europe, performance
degrades, and the leak goes undetected.  This module injects that class of
misbehaviour into an :class:`~repro.netsim.anycast.AnycastNetwork` so the
detector built in :mod:`repro.agility.leaks` has something to detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .addr import Prefix
from .anycast import AnycastNetwork
from .bgp import Announcement

__all__ = [
    "LeakScenario",
    "attach_multihomed_leaker",
    "inject_route_leak",
    "inject_hijack",
    "CatchmentShift",
    "diff_catchments",
]


def attach_multihomed_leaker(
    network: AnycastNetwork, name: object, provider_a: object, provider_b: object
) -> object:
    """Add the classic leak-prone AS: a customer of two providers.

    Figure 9's AS3: it learns the anycast prefix through ``provider_a``
    (whose own route is typically a peer route to the regional PoP) and —
    once :func:`inject_route_leak` flips its export policy — re-advertises
    it to ``provider_b``, which then *prefers* the leaked path because
    customer routes beat peer routes.  ``provider_b``'s whole customer cone
    is pulled across.
    """
    if provider_a not in network.graph or provider_b not in network.graph:
        raise KeyError("both providers must exist in the topology")
    network.graph.add_provider(name, provider_a)
    network.graph.add_provider(name, provider_b)
    # New node needs a RIB; rebuild the engine (preserving its flavour and
    # wiring) over the grown graph and replay the announcements.
    network.use_simulation(network.sim.rebuilt(network.graph))
    return name


@dataclass(frozen=True, slots=True)
class LeakScenario:
    """Handle for an injected leak, so it can be healed again.

    ``fault`` is the registry-built :class:`~repro.faults.routing.RouteLeak`
    behind the injection; healing reverts it, so manual injections and
    chaos-campaign injections share one code path.
    """

    network: AnycastNetwork
    leaker: object
    prefix: Prefix
    fault: object | None = None

    def heal(self) -> None:
        """Remove the leaking export policy and restore routing."""
        from ..faults.injector import FaultTargets

        if self.fault is not None:
            self.fault.revert(FaultTargets(network=self.network), random.Random(0))
        else:
            self.network.sim.set_export_policy(self.leaker, None)
            self.network.sim.reconverge_from_scratch()


def inject_route_leak(network: AnycastNetwork, leaker: object, prefix: Prefix) -> LeakScenario:
    """Make ``leaker`` re-export ``prefix`` in violation of valley-free rules.

    Builds the fault through :func:`repro.faults.registry.build_fault` — the
    same factory chaos campaigns use — so parameter validation (typed
    :class:`~repro.faults.errors.FaultConfigError` on a malformed prefix)
    and injection semantics cannot drift between the two entry points.  On
    the static engine the fixpoint is recomputed immediately; callers
    compare catchments before/after (see :func:`diff_catchments`).
    """
    from ..faults.injector import FaultTargets
    from ..faults.registry import build_fault

    if leaker not in network.graph:
        raise KeyError(f"unknown AS {leaker!r}")
    fault = build_fault("route_leak", leaker=leaker, prefix=str(prefix))
    fault.apply(FaultTargets(network=network), random.Random(0))
    return LeakScenario(network, leaker, fault.prefix, fault=fault)


def inject_hijack(network: AnycastNetwork, hijacker: object, prefix: Prefix) -> None:
    """Make ``hijacker`` originate ``prefix`` it does not own.

    Announcing a more-specific of an in-use prefix is the classic total
    hijack; announcing the same length competes on path length.  §4.3 of the
    paper notes a /24 is the narrowest BGP-permitted IPv4 prefix, which is
    why operating from a /24 is intrinsically hijack-resistant: no
    more-specific can be announced.
    """
    if hijacker not in network.graph:
        raise KeyError(f"unknown AS {hijacker!r}")
    network.sim.announce(Announcement(prefix, hijacker))
    network.sim.converge()


@dataclass(frozen=True, slots=True)
class CatchmentShift:
    """One client AS whose traffic moved from ``before`` to ``after``."""

    client: object
    before: str | None
    after: str | None


def diff_catchments(
    before: dict[object, str | None],
    after: dict[object, str | None],
) -> list[CatchmentShift]:
    """Clients whose PoP changed between two catchment maps."""
    shifts = []
    for client, old in before.items():
        new = after.get(client)
        if new != old:
            shifts.append(CatchmentShift(client, old, new))
    return shifts
