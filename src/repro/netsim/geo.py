"""Geography and latency model for PoPs and client populations.

The paper's deployment spans "6 PoPs/DCs at 8 IXPs serving 5 contiguous
timezones" (§4.2), and the route-leak scenario of Figure 9 hinges on
US clients being misdirected to Europe.  The simulator needs only a
coarse-but-monotone latency model: great-circle distance over the speed of
light in fibre, plus a fixed per-hop processing charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GeoPoint", "great_circle_km", "propagation_rtt_ms", "WELL_KNOWN_CITIES"]

_EARTH_RADIUS_KM = 6371.0
# Speed of light in fibre ~ 2/3 c; one-way ms per km.
_MS_PER_KM_ONE_WAY = 1.0 / 200.0
_PER_HOP_MS = 0.35


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A named location on the globe (degrees latitude / longitude)."""

    name: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range")


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Haversine great-circle distance in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def propagation_rtt_ms(a: GeoPoint, b: GeoPoint, hops: int = 6) -> float:
    """Round-trip time estimate between two points.

    Distance over fibre both ways, plus ``hops`` router traversals each way.
    The absolute numbers are unimportant to the reproduction; what matters
    is that a US client reaching a European PoP (Figure 9's leak) costs
    visibly more than reaching a nearby one.
    """
    km = great_circle_km(a, b)
    return 2 * (km * _MS_PER_KM_ONE_WAY + hops * _PER_HOP_MS)


#: A small gazetteer used by examples and benches when building topologies.
WELL_KNOWN_CITIES: dict[str, GeoPoint] = {
    name: GeoPoint(name, lat, lon)
    for name, lat, lon in [
        ("ashburn", 39.04, -77.49),
        ("chicago", 41.88, -87.63),
        ("dallas", 32.78, -96.80),
        ("denver", 39.74, -104.99),
        ("losangeles", 34.05, -118.24),
        ("seattle", 47.61, -122.33),
        ("newyork", 40.71, -74.01),
        ("miami", 25.76, -80.19),
        ("london", 51.51, -0.13),
        ("frankfurt", 50.11, 8.68),
        ("paris", 48.86, 2.35),
        ("amsterdam", 52.37, 4.90),
        ("madrid", 40.42, -3.70),
        ("warsaw", 52.23, 21.01),
        ("singapore", 1.35, 103.82),
        ("tokyo", 35.68, 139.69),
        ("sydney", -33.87, 151.21),
        ("saopaulo", -23.55, -46.63),
        ("johannesburg", -26.20, 28.05),
        ("mumbai", 19.08, 72.88),
    ]
}
