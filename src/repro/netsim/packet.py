"""Packet, flow, and connection-tuple models for the simulated data plane.

The socket stack (:mod:`repro.sockets`) dispatches on the classic 5-tuple;
the edge datacenter (:mod:`repro.edge`) hashes flows through ECMP; the
route-leak detector (:mod:`repro.agility.leaks`) inspects destination
addresses of arriving flows.  All of them share these value types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .addr import IPAddress

__all__ = ["Protocol", "FiveTuple", "Packet", "FlowRecord"]


class Protocol(enum.IntEnum):
    """Transport protocols the simulator models.

    QUIC is carried over UDP on the wire; it is distinguished here because
    Figure 8 of the paper reports TCP and QUIC connection-reuse separately,
    and §5.2 discusses QUIC/UDP NAT port exhaustion.
    """

    TCP = 6
    UDP = 17
    QUIC = 1700  # UDP-encapsulated; distinct for accounting purposes

    @property
    def wire_protocol(self) -> "Protocol":
        """The IP-level protocol number actually seen by the socket layer."""
        return Protocol.UDP if self is Protocol.QUIC else self


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """(proto, src ip, src port, dst ip, dst port) — a connection identity."""

    protocol: Protocol
    src: IPAddress
    src_port: int
    dst: IPAddress
    dst_port: int

    def __post_init__(self) -> None:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} {port} outside 0..65535")

    def reversed(self) -> "FiveTuple":
        """The tuple as seen from the opposite direction."""
        return FiveTuple(self.protocol, self.dst, self.dst_port, self.src, self.src_port)

    def __str__(self) -> str:
        return (
            f"{self.protocol.name.lower()} "
            f"{self.src}:{self.src_port} -> {self.dst}:{self.dst_port}"
        )


@dataclass(frozen=True, slots=True)
class Packet:
    """A single simulated datagram/segment.

    ``payload_len`` stands in for actual bytes; the simulator never carries
    payload content at the packet layer (application content lives in
    :mod:`repro.web`).  ``syn`` marks TCP connection-opening segments, which
    is what the listening-socket lookup path cares about.
    """

    tuple5: FiveTuple
    payload_len: int = 0
    syn: bool = False

    @property
    def protocol(self) -> Protocol:
        return self.tuple5.protocol

    @property
    def dst(self) -> IPAddress:
        return self.tuple5.dst

    @property
    def dst_port(self) -> int:
        return self.tuple5.dst_port

    @property
    def src(self) -> IPAddress:
        return self.tuple5.src

    @property
    def src_port(self) -> int:
        return self.tuple5.src_port


@dataclass(slots=True)
class FlowRecord:
    """Aggregated per-flow accounting: what a sampled netflow record holds.

    Figure 7 of the paper is drawn from 1 % request samples; our analysis
    pipeline aggregates these records into per-destination-address request
    and byte counts.
    """

    tuple5: FiveTuple
    requests: int = 0
    bytes: int = 0
    hostnames: set[str] = field(default_factory=set)

    def add_request(self, hostname: str, nbytes: int) -> None:
        self.requests += 1
        self.bytes += nbytes
        self.hostnames.add(hostname)
