"""The kernel socket-lookup path, with the sk_lookup stage injected.

Figure 5a of the paper: on packet arrival the kernel looks for a connected
(4-tuple) socket; sk_lookup programs run next, *before* the listening-
socket lookup; then the exact listener; then the INADDR_ANY wildcard; then
miss.  :class:`LookupPath` implements exactly that pipeline over a
:class:`~repro.sockets.socktable.SocketTable`, with per-stage counters so
experiments can show where packets resolve.

Two engines execute the sk_lookup stage:

``Engine.COMPILED`` (the default)
    each program's rule list lowered to an indexed matcher
    (:mod:`repro.sockets.compiled`) — constant probes per packet;
``Engine.INTERPRETER``
    the faithful rule-by-rule scan of :meth:`SkLookupProgram.run`,
    kept for differential testing and the interpreter-vs-compiled
    benchmarks.

Both produce identical verdicts and identical program stats; the
differential property suite enforces it.  :meth:`LookupPath.dispatch_batch`
is the high-throughput entry: compiled forms are fetched once per batch
(not per packet), flow hashes can be supplied precomputed so the edge
pipeline hashes each packet exactly once, and per-batch counters plus an
optional dispatch-latency histogram feed :mod:`repro.obs`.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..netsim.packet import FiveTuple, Packet
from .errors import BatchShapeError, ProgramNotAttachedError
from .sklookup import SkLookupProgram, Verdict
from .socktable import Socket, SocketTable

__all__ = [
    "Engine",
    "LookupStage",
    "DispatchResult",
    "LookupPath",
    "flow_hash",
    "flow_hash_tuple",
]


class Engine(str, enum.Enum):
    """Which executor runs attached sk_lookup programs."""

    INTERPRETER = "interpreter"
    COMPILED = "compiled"


class LookupStage(enum.Enum):
    CONNECTED = "connected"
    SK_LOOKUP = "sk_lookup"
    LISTENER = "listener"
    WILDCARD = "wildcard"
    DROPPED = "dropped"
    MISS = "miss"


@dataclass(frozen=True, slots=True)
class DispatchResult:
    """Where a packet landed, and via which stage."""

    stage: LookupStage
    socket: Socket | None

    @property
    def delivered(self) -> bool:
        return self.socket is not None


def flow_hash(packet: Packet) -> int:
    """A deterministic per-flow hash (kernel: jhash on the flow key).

    Used for SO_REUSEPORT member selection and by the ECMP router; stable
    across calls for the same 5-tuple.  The edge pipeline computes it once
    per packet and threads it through ECMP, L4LB, and listener selection
    (see :meth:`~repro.edge.datacenter.Datacenter.connect`).
    """
    return flow_hash_tuple(packet.tuple5)


def flow_hash_tuple(t: FiveTuple) -> int:
    """:func:`flow_hash` on a bare 5-tuple — the form the columnar flow
    engine uses, since its batches carry tuple columns, not Packets.  The
    numpy backend (:mod:`repro.flow.backend`) reimplements exactly this
    chain over uint64 arrays; the differential suite pins bit-equality."""
    h = 0xCBF29CE484222325
    for part in (
        int(t.protocol.wire_protocol),
        t.src.value,
        t.src_port,
        t.dst.value,
        t.dst_port,
    ):
        h ^= part & 0xFFFFFFFFFFFFFFFF
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        h ^= part >> 64  # fold in the high bits of IPv6 addresses
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class LookupPath:
    """The per-host dispatch pipeline.

    ``attach``/``detach`` manage sk_lookup programs; programs run in attach
    order and the first one returning a socket (or a drop) wins, matching
    the kernel's multi-program semantics.
    """

    def __init__(self, table: SocketTable, engine: Engine | str = Engine.COMPILED) -> None:
        self.table = table
        self.engine = Engine(engine)
        self._programs: list[SkLookupProgram] = []
        self.stage_counts: dict[LookupStage, int] = {stage: 0 for stage in LookupStage}
        #: Batch accounting, read by :func:`repro.obs.adapters.watch_lookup_path`.
        self.batches = 0
        self.batch_packets = 0
        #: Optional dispatch-latency hookup (see
        #: :func:`repro.obs.adapters.time_lookup_path`): ``timer`` is a
        #: float-seconds callable supplied by *measurement* code — the
        #: simulation itself never reads the wall clock — and
        #: ``latency_hist`` receives one mean-per-packet observation per
        #: batch.
        self.timer: Callable[[], float] | None = None
        self.latency_hist = None

    # -- program management ------------------------------------------------

    def attach(self, program: SkLookupProgram) -> None:
        if program in self._programs:
            raise ValueError(f"program {program.name} already attached")
        self._programs.append(program)

    def detach(self, program: SkLookupProgram) -> None:
        """Remove an attached program; typed error when it was never here."""
        try:
            self._programs.remove(program)
        except ValueError:
            attached = ", ".join(p.name for p in self._programs) or "none"
            raise ProgramNotAttachedError(
                f"program {program.name} is not attached to this lookup path "
                f"(attached: {attached})"
            ) from None

    def programs(self) -> tuple[SkLookupProgram, ...]:
        return tuple(self._programs)

    def _runners(self) -> list[Callable[[Packet], tuple[Verdict, Socket | None]]]:
        """Per-program executors for the configured engine.

        Fetched once per dispatch call (once per *batch* on the batch
        path), which is also where compiled-form invalidation is checked —
        rule changes mid-batch are not observed, exactly like a kernel
        program swap is atomic per packet.
        """
        if self.engine is Engine.COMPILED:
            return [program.compiled().run for program in self._programs]
        return [program.run for program in self._programs]

    # -- dispatch ------------------------------------------------------------

    def dispatch(
        self,
        packet: Packet,
        deliver: bool = True,
        flow_hash: int | None = None,
    ) -> DispatchResult:
        """Find the receiving socket for ``packet`` (and enqueue it).

        ``deliver=False`` performs lookup only — benchmarks use it to
        measure pure dispatch cost without queue churn.  ``flow_hash``
        reuses a hash the caller already computed (ECMP ingress computes
        it for routing; listener selection must not pay for it twice).
        """
        result = self._lookup(packet, self._runners(), flow_hash)
        self.stage_counts[result.stage] += 1
        if deliver and result.socket is not None:
            result.socket.deliver(packet)
        return result

    def dispatch_batch(
        self,
        packets: Sequence[Packet],
        deliver: bool = True,
        flow_hashes: Sequence[int] | None = None,
    ) -> list[DispatchResult]:
        """Dispatch many packets through one engine/program setup.

        The batch entry point hoists per-packet overhead: compiled program
        forms (and their invalidation check) are fetched once, stage
        counters are folded in once, and ``flow_hashes`` — parallel to
        ``packets`` — lets the edge pipeline reuse the hashes its ECMP
        stage already computed.  Returns one :class:`DispatchResult` per
        packet, in order; semantics are exactly ``dispatch`` in a loop.

        ``flow_hashes`` must be exactly as long as ``packets``: a shorter
        (or longer) column raises :class:`BatchShapeError` up front.  The
        old ``zip`` silently dropped the unpaired tail — those packets were
        never dispatched, never delivered, and never counted.
        """
        if flow_hashes is not None and len(flow_hashes) != len(packets):
            raise BatchShapeError(
                "dispatch_batch", "flow_hashes must parallel packets",
                {"packets": len(packets), "flow_hashes": len(flow_hashes)},
            )
        timer = self.timer
        started = timer() if timer is not None else 0.0
        runners = self._runners()
        lookup = self._lookup
        results: list[DispatchResult] = []
        append = results.append
        try:
            if flow_hashes is None:
                for packet in packets:
                    result = lookup(packet, runners, None)
                    append(result)
                    if deliver and result.socket is not None:
                        result.socket.deliver(packet)
            else:
                for packet, fh in zip(packets, flow_hashes):
                    result = lookup(packet, runners, fh)
                    append(result)
                    if deliver and result.socket is not None:
                        result.socket.deliver(packet)
        finally:
            # Fold in a finally so a mid-batch failure (a program raising)
            # leaves the same counters a scalar loop would have left for
            # the packets that did dispatch.
            counts = self.stage_counts
            for result in results:
                counts[result.stage] += 1
            self.batches += 1
            self.batch_packets += len(results)
        if timer is not None and self.latency_hist is not None and results:
            self.latency_hist.observe((timer() - started) / len(results))
        return results

    def _lookup(
        self,
        packet: Packet,
        runners: list[Callable[[Packet], tuple[Verdict, Socket | None]]],
        fh: int | None = None,
    ) -> DispatchResult:
        # Stage 1: connected sockets (4-tuple match).
        connected = self.table.find_connected(packet)
        if connected is not None:
            return DispatchResult(LookupStage.CONNECTED, connected)

        # Stage 2: sk_lookup programs, attach order.
        for run in runners:
            verdict, sock = run(packet)
            if verdict is Verdict.DROP:
                return DispatchResult(LookupStage.DROPPED, None)
            if sock is not None:
                return DispatchResult(LookupStage.SK_LOOKUP, sock)

        # Stages 3+4: exact listener, then wildcard.
        if fh is None:
            fh = flow_hash(packet)
        sock = self.table.find_listener(packet.protocol, packet.dst, packet.dst_port, flow_hash=fh)
        if sock is not None:
            stage = LookupStage.WILDCARD if sock.is_wildcard else LookupStage.LISTENER
            return DispatchResult(stage, sock)

        return DispatchResult(LookupStage.MISS, None)
