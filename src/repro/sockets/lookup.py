"""The kernel socket-lookup path, with the sk_lookup stage injected.

Figure 5a of the paper: on packet arrival the kernel looks for a connected
(4-tuple) socket; sk_lookup programs run next, *before* the listening-
socket lookup; then the exact listener; then the INADDR_ANY wildcard; then
miss.  :class:`LookupPath` implements exactly that pipeline over a
:class:`~repro.sockets.socktable.SocketTable`, with per-stage counters so
experiments can show where packets resolve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netsim.packet import Packet
from .sklookup import SkLookupProgram, Verdict
from .socktable import Socket, SocketTable

__all__ = ["LookupStage", "DispatchResult", "LookupPath", "flow_hash"]


class LookupStage(enum.Enum):
    CONNECTED = "connected"
    SK_LOOKUP = "sk_lookup"
    LISTENER = "listener"
    WILDCARD = "wildcard"
    DROPPED = "dropped"
    MISS = "miss"


@dataclass(frozen=True, slots=True)
class DispatchResult:
    """Where a packet landed, and via which stage."""

    stage: LookupStage
    socket: Socket | None

    @property
    def delivered(self) -> bool:
        return self.socket is not None


def flow_hash(packet: Packet) -> int:
    """A deterministic per-flow hash (kernel: jhash on the flow key).

    Used for SO_REUSEPORT member selection and by the ECMP router; stable
    across calls for the same 5-tuple.
    """
    t = packet.tuple5
    h = 0xCBF29CE484222325
    for part in (
        int(t.protocol.wire_protocol),
        t.src.value,
        t.src_port,
        t.dst.value,
        t.dst_port,
    ):
        h ^= part & 0xFFFFFFFFFFFFFFFF
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        h ^= part >> 64  # fold in the high bits of IPv6 addresses
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class LookupPath:
    """The per-host dispatch pipeline.

    ``attach``/``detach`` manage sk_lookup programs; programs run in attach
    order and the first one returning a socket (or a drop) wins, matching
    the kernel's multi-program semantics.
    """

    def __init__(self, table: SocketTable) -> None:
        self.table = table
        self._programs: list[SkLookupProgram] = []
        self.stage_counts: dict[LookupStage, int] = {stage: 0 for stage in LookupStage}

    # -- program management ------------------------------------------------

    def attach(self, program: SkLookupProgram) -> None:
        if program in self._programs:
            raise ValueError(f"program {program.name} already attached")
        self._programs.append(program)

    def detach(self, program: SkLookupProgram) -> None:
        self._programs.remove(program)

    def programs(self) -> tuple[SkLookupProgram, ...]:
        return tuple(self._programs)

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, packet: Packet, deliver: bool = True) -> DispatchResult:
        """Find the receiving socket for ``packet`` (and enqueue it).

        ``deliver=False`` performs lookup only — benchmarks use it to
        measure pure dispatch cost without queue churn.
        """
        result = self._lookup(packet)
        self.stage_counts[result.stage] += 1
        if deliver and result.socket is not None:
            result.socket.deliver(packet)
        return result

    def _lookup(self, packet: Packet) -> DispatchResult:
        # Stage 1: connected sockets (4-tuple match).
        connected = self.table.find_connected(packet)
        if connected is not None:
            return DispatchResult(LookupStage.CONNECTED, connected)

        # Stage 2: sk_lookup programs, attach order.
        for program in self._programs:
            verdict, sock = program.run(packet)
            if verdict is Verdict.DROP:
                return DispatchResult(LookupStage.DROPPED, None)
            if sock is not None:
                return DispatchResult(LookupStage.SK_LOOKUP, sock)

        # Stages 3+4: exact listener, then wildcard.
        fh = flow_hash(packet)
        sock = self.table.find_listener(packet.protocol, packet.dst, packet.dst_port, flow_hash=fh)
        if sock is not None:
            stage = LookupStage.WILDCARD if sock.is_wildcard else LookupStage.LISTENER
            return DispatchResult(stage, sock)

        return DispatchResult(LookupStage.MISS, None)
