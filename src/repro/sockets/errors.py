"""Socket-layer errors mirroring the errno conditions the paper discusses."""

from __future__ import annotations

__all__ = [
    "SocketError",
    "AddressInUseError",
    "BatchShapeError",
    "InvalidSocketStateError",
    "ProgramError",
    "ProgramNotAttachedError",
    "VerifierError",
]


class SocketError(Exception):
    """Base class for simulated socket-stack failures."""


class AddressInUseError(SocketError):
    """EADDRINUSE: the requested binding conflicts with an existing socket.

    §3.3 calls out the headline case: "a service that listens on the
    wildcard INADDR_ANY address claims the port number exclusively for
    itself.  Attempts to listen on a specific IP and a port bound to the
    wildcard-listening socket will fail."
    """


class InvalidSocketStateError(SocketError):
    """Operation not valid in the socket's current state (e.g. double bind)."""


class ProgramError(SocketError):
    """An sk_lookup program misbehaved at dispatch time."""


class ProgramNotAttachedError(ProgramError):
    """Detach of a program the lookup path never attached (or already lost).

    A bare ``list.remove`` ValueError leaked here before — indistinguishable
    from any other bad argument for callers tearing down listening state
    during failover.  The message names the program, mirroring the typed
    ``UnknownServerError`` the ECMP membership path raises.
    """


class BatchShapeError(SocketError):
    """Parallel batch columns disagree in length.

    Every ``*_batch`` entry point takes struct-of-arrays inputs whose
    columns must be the same length.  ``zip`` over mismatched columns used
    to truncate silently — :meth:`LookupPath.dispatch_batch` simply never
    dispatched the trailing packets (``batch_packets`` undercounted and
    ``deliver=True`` skipped delivery with no error).  The message always
    names both lengths so the caller can see which column is short.
    """

    def __init__(self, context: str, expected: str, lengths: dict[str, int]) -> None:
        cols = ", ".join(f"{name}={n}" for name, n in lengths.items())
        super().__init__(f"{context}: mismatched batch columns ({cols}); {expected}")
        #: Column name → observed length, for programmatic inspection.
        self.lengths = dict(lengths)


class VerifierError(SocketError):
    """The sk_lookup verifier rejected a program at attach time.

    The in-kernel BPF verifier rejects unsafe programs before they can run;
    our model enforces the analogous structural invariants (well-formed
    matches, resolvable map references, bounded size).
    """
