"""Carrier-grade NAT model for the §5.2 port-exhaustion analysis.

"From the client-side, the number of permissible concurrent connections to
one-address is upper-bounded by the size of a transport protocol's port
field.  For TCP this is no longer an issue [IP_BIND_ADDRESS_NO_PORT]. In
UDP (QUIC), however, the only way to reuse ports is with SO_REUSEPORT.
This could cause carrier-grade NATs to exhaust available UDP ports."

The NAT maps an internal (addr, port) to an external (addr, port) such that
the external pair is unique *per destination* for TCP (five-tuple NAT,
enabled by IP_BIND_ADDRESS_NO_PORT-style late binding) but globally unique
per external IP for classic UDP NAT.  With every flow aimed at one
destination address, the UDP binding space collapses to 64 K per external
IP — the paper's "only drawback" of one-address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.addr import IPAddress
from ..netsim.packet import Protocol

__all__ = ["NatExhaustedError", "NatBinding", "CarrierGradeNAT"]

_PORT_MIN = 1024
_PORT_MAX = 65535
_PORTS_PER_IP = _PORT_MAX - _PORT_MIN + 1


class NatExhaustedError(Exception):
    """No external (IP, port) pair is available for a new binding."""


@dataclass(frozen=True, slots=True)
class NatBinding:
    internal: tuple[IPAddress, int]
    external: tuple[IPAddress, int]
    protocol: Protocol
    destination: tuple[IPAddress, int]


class CarrierGradeNAT:
    """A CGN with a pool of external addresses.

    ``tcp_five_tuple_nat=True`` (default, the modern behaviour the paper
    cites) lets TCP reuse an external port for different destinations.
    UDP bindings consume an (external ip, port) exclusively: QUIC flows
    cannot share, absent connection-ID-aware NAT, which the paper notes is
    foreclosed by encryption.
    """

    def __init__(
        self,
        external_ips: list[IPAddress],
        tcp_five_tuple_nat: bool = True,
    ) -> None:
        if not external_ips:
            raise ValueError("NAT needs at least one external IP")
        self.external_ips = list(external_ips)
        self.tcp_five_tuple_nat = tcp_five_tuple_nat
        # UDP: (ext_ip_value, ext_port) in use.  TCP (5-tuple mode):
        # (ext_ip_value, ext_port, dst_value, dst_port) in use.
        self._udp_used: set[tuple[int, int]] = set()
        self._tcp_used: set[tuple] = set()
        self._bindings: dict[tuple, NatBinding] = {}
        self._next_port: dict[int, int] = {ip.value: _PORT_MIN for ip in external_ips}

    # -- capacity ------------------------------------------------------------

    def udp_capacity(self) -> int:
        """Maximum simultaneous UDP bindings across the pool."""
        return len(self.external_ips) * _PORTS_PER_IP

    def udp_in_use(self) -> int:
        return len(self._udp_used)

    def tcp_capacity_per_destination(self) -> int:
        """Concurrent TCP flows towards one (dst ip, dst port)."""
        return len(self.external_ips) * _PORTS_PER_IP

    # -- binding ---------------------------------------------------------------

    def bind(
        self,
        internal: tuple[IPAddress, int],
        protocol: Protocol,
        destination: tuple[IPAddress, int],
    ) -> NatBinding:
        """Allocate an external (ip, port) for a new outbound flow."""
        key = (internal[0].value, internal[1], protocol.wire_protocol, destination[0].value, destination[1])
        existing = self._bindings.get(key)
        if existing is not None:
            return existing

        wire = protocol.wire_protocol
        for ext_ip in self.external_ips:
            port = self._find_port(ext_ip, wire, destination)
            if port is None:
                continue
            binding = NatBinding(internal, (ext_ip, port), protocol, destination)
            if wire is Protocol.UDP:
                self._udp_used.add((ext_ip.value, port))
            else:
                self._tcp_used.add(self._tcp_key(ext_ip, port, destination))
            self._bindings[key] = binding
            return binding
        raise NatExhaustedError(
            f"no {wire.name} ports left across {len(self.external_ips)} external IPs "
            f"for destination {destination[0]}:{destination[1]}"
        )

    def release(self, binding: NatBinding) -> None:
        wire = binding.protocol.wire_protocol
        ext_ip, port = binding.external
        if wire is Protocol.UDP:
            self._udp_used.discard((ext_ip.value, port))
        else:
            self._tcp_used.discard(self._tcp_key(ext_ip, port, binding.destination))
        key = (
            binding.internal[0].value,
            binding.internal[1],
            wire,
            binding.destination[0].value,
            binding.destination[1],
        )
        self._bindings.pop(key, None)

    # -- internals ---------------------------------------------------------------

    def _tcp_key(self, ext_ip: IPAddress, port: int, destination: tuple[IPAddress, int]) -> tuple:
        if self.tcp_five_tuple_nat:
            return (ext_ip.value, port, destination[0].value, destination[1])
        return (ext_ip.value, port)

    def _port_free(self, ext_ip: IPAddress, port: int, wire: Protocol,
                   destination: tuple[IPAddress, int]) -> bool:
        if wire is Protocol.UDP:
            return (ext_ip.value, port) not in self._udp_used
        return self._tcp_key(ext_ip, port, destination) not in self._tcp_used

    def _find_port(self, ext_ip: IPAddress, wire: Protocol,
                   destination: tuple[IPAddress, int]) -> int | None:
        start = self._next_port[ext_ip.value]
        port = start
        for _ in range(_PORTS_PER_IP):
            if self._port_free(ext_ip, port, wire, destination):
                nxt = port + 1
                self._next_port[ext_ip.value] = _PORT_MIN if nxt > _PORT_MAX else nxt
                return port
            port += 1
            if port > _PORT_MAX:
                port = _PORT_MIN
        return None
