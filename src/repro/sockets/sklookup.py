"""sk_lookup: programmable socket lookup, modelled after the kernel design.

The real implementation (Linux ≥ 5.9, merged from Cloudflare's patches) is
a BPF program type executed on the socket-lookup path.  Our model keeps the
same moving parts and contracts:

* a **SOCKARRAY map** (:class:`SockArray`) holding references to listening
  sockets, populated out-of-band by a socket-activation service;
* a **program** (:class:`SkLookupProgram`) that is "a set of matches and
  actions" (Figure 5b): each rule matches on family / protocol / destination
  prefix(es) / port range and either redirects to a map slot, passes, or
  drops;
* a **verifier** (:func:`verify_program`) that rejects malformed programs at
  attach time, the moral equivalent of the BPF verifier;
* return semantics: ``SK_PASS`` without a selected socket lets the normal
  lookup continue; ``SK_PASS`` with an assigned socket short-circuits it;
  ``SK_DROP`` drops the packet (used below for the "internal service not
  exposed externally" pattern §3.3 motivates).

Crucially — as in the kernel — the program *never mutates sockets*: it maps
packets onto already-listening sockets, so IP+port assignment becomes a map
update rather than a bind, and can change while the service runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..netsim.addr import Prefix
from ..netsim.packet import Packet, Protocol
from .errors import ProgramError, VerifierError
from .socktable import Socket, SocketState

__all__ = [
    "Verdict",
    "SockArray",
    "MatchRule",
    "SkLookupProgram",
    "verify_program",
    "MAX_RULES_PER_PROGRAM",
]

#: The verifier bounds program size, as the kernel bounds instruction count.
MAX_RULES_PER_PROGRAM = 4096


class Verdict(enum.Enum):
    PASS = "SK_PASS"
    DROP = "SK_DROP"


class SockArray:
    """A BPF-map-like array of socket references.

    The kernel map holds sockets by integer index and is updated by a
    socket-activation service as file descriptors are passed to it (§3.3).
    Updates take effect on the very next dispatched packet — this is the
    mechanism behind "IP+port re-assignment to existing listening sockets".
    """

    def __init__(self, size: int = 64, name: str = "sockarray") -> None:
        if size <= 0:
            raise ValueError("map size must be positive")
        self.name = name
        self.size = size
        self._slots: dict[int, Socket] = {}
        self.updates = 0
        #: Updates that silently displaced a *different live* socket.  A
        #: replacement is a legitimate operation (re-pointing a slot is the
        #: §3.3 mechanism) but an unnoticed one is how a misconfigured
        #: activation service blackholes a service — so it is counted, and
        #: surfaced through the sk_lookup metrics collector.
        self.replacements = 0

    def update(self, key: int, sock: Socket) -> None:
        """Install/replace a socket reference (bpf_map_update_elem).

        Replacing an occupied slot is allowed — the kernel map makes no
        distinction — but when the displaced socket is still listening the
        swap is counted in :attr:`replacements` so operators can tell a
        deliberate re-point from a collision."""
        self._check_key(key)
        if sock.state is not SocketState.LISTENING:
            raise ProgramError(
                f"map {self.name}[{key}]: socket fd={sock.fd} is not listening"
            )
        previous = self._slots.get(key)
        if (
            previous is not None
            and previous is not sock
            and previous.state is SocketState.LISTENING
        ):
            self.replacements += 1
        self._slots[key] = sock
        self.updates += 1

    def delete(self, key: int) -> None:
        self._check_key(key)
        self._slots.pop(key, None)
        self.updates += 1

    def lookup(self, key: int) -> Socket | None:
        """bpf_map_lookup_elem: stale (closed) sockets read as empty."""
        self._check_key(key)
        sock = self._slots.get(key)
        if sock is not None and sock.state is not SocketState.LISTENING:
            return None
        return sock

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.size:
            raise ProgramError(f"map {self.name}: key {key} outside 0..{self.size - 1}")

    def __len__(self) -> int:
        return len(self._slots)


@dataclass(frozen=True, slots=True)
class MatchRule:
    """One match/action pair — a line of Figure 5b's firewall-like program.

    All match fields are conjunctive; ``None``/empty means "any".  Ports are
    an inclusive range so "all 65535 ports of one address to one socket"
    (Figure 4c) is a single rule.

    Prefix matches are compiled to (family, network, mask) integer triples
    at construction: rule evaluation is the dispatch hot path (the kernel
    runs the BPF equivalent on every packet) and must not allocate.
    """

    action: Verdict
    protocol: Protocol | None = None
    prefixes: tuple[Prefix, ...] = ()
    port_lo: int = 1
    port_hi: int = 0xFFFF
    map_key: int | None = None  # required when action is PASS-with-redirect
    label: str = ""
    _compiled: tuple = field(init=False, repr=False, compare=False, default=())
    _wire_protocol: Protocol | None = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        compiled = tuple(
            (p.family, p.network, p.net_mask()) for p in self.prefixes
        )
        object.__setattr__(self, "_compiled", compiled)
        wire = None if self.protocol is None else self.protocol.wire_protocol
        object.__setattr__(self, "_wire_protocol", wire)

    def matches(self, packet: Packet) -> bool:
        if self._wire_protocol is not None and packet.tuple5.protocol.wire_protocol is not self._wire_protocol:
            return False
        if not self.port_lo <= packet.tuple5.dst_port <= self.port_hi:
            return False
        if self._compiled:
            dst = packet.tuple5.dst
            family, value = dst.family, dst.value
            for p_family, network, mask in self._compiled:
                if family == p_family and (value & mask) == network:
                    return True
            return False
        return True

    @property
    def is_redirect(self) -> bool:
        return self.action is Verdict.PASS and self.map_key is not None


class SkLookupProgram:
    """An attached sk_lookup program: ordered rules over one sock array.

    Dispatch semantics (mirroring the kernel helper contract):

    * rules are evaluated in order; the first matching rule decides;
    * a redirect rule looks up its map slot — an empty/stale slot falls
      through to the next rule (the kernel's ``bpf_sk_assign`` on a NULL
      socket would fail and the program would return SK_PASS);
    * no rule matching ⇒ SK_PASS with no socket: normal lookup continues.
    """

    def __init__(self, name: str, sock_map: SockArray, rules: list[MatchRule] | None = None) -> None:
        self.name = name
        self.map = sock_map
        self._rules: list[MatchRule] = []
        self.stats: dict[str, int] = {
            "runs": 0, "redirects": 0, "drops": 0, "fallthroughs": 0,
            "rules_removed": 0, "compiles": 0,
        }
        # Rule-list generation counter: bumped on every add/remove so the
        # compiled form (see :meth:`compiled`) knows when it is stale.  Map
        # content changes deliberately do NOT bump it — the compiled form
        # reads the sock array live, as the kernel program reads its map.
        self._rule_version = 0
        self._compiled_cache = None
        for rule in rules or []:
            self.add_rule(rule)

    # -- rule management -------------------------------------------------------

    def add_rule(self, rule: MatchRule) -> None:
        _verify_rule(rule, self.map)
        if len(self._rules) >= MAX_RULES_PER_PROGRAM:
            raise VerifierError(f"program {self.name}: rule limit reached")
        self._rules.append(rule)
        self._rule_version += 1

    def remove_rules(self, label: str) -> int:
        """Remove all rules carrying ``label``; returns how many.

        The empty label is rejected: ``MatchRule.label`` defaults to
        ``""``, so ``remove_rules("")`` would silently delete every
        unlabeled rule — almost certainly a caller bug, never a rollback.
        """
        if not label:
            raise ProgramError(
                f"program {self.name}: remove_rules needs a non-empty label "
                f"(\"\" would match every unlabeled rule)"
            )
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.label != label]
        removed = before - len(self._rules)
        self.stats["rules_removed"] += removed
        if removed:
            self._rule_version += 1
        return removed

    def rules(self) -> tuple[MatchRule, ...]:
        return tuple(self._rules)

    @property
    def rule_version(self) -> int:
        """Monotone rule-list generation; compiled forms are tagged with it."""
        return self._rule_version

    # -- compilation -------------------------------------------------------------

    def compiled(self):
        """The program's compiled form, rebuilt only when rules changed.

        Returns a :class:`~repro.sockets.compiled.CompiledProgram` whose
        verdicts are exactly the interpreter's (differential property
        tests enforce this).  Rebuilds — counted in ``stats["compiles"]``
        — happen on the first dispatch after :meth:`add_rule` or
        :meth:`remove_rules`; sock-array updates never invalidate, and a
        crash/restore that swaps in a fresh program starts from a fresh
        cache by construction.
        """
        from .compiled import CompiledProgram  # deferred: avoids import cycle

        cache = self._compiled_cache
        if cache is None or cache.version != self._rule_version:
            cache = self._compiled_cache = CompiledProgram(self)
            self.stats["compiles"] += 1
        return cache

    # -- dispatch ----------------------------------------------------------------

    def run(self, packet: Packet) -> tuple[Verdict, Socket | None]:
        """Execute on one packet: (verdict, selected socket or None)."""
        self.stats["runs"] += 1
        for rule in self._rules:
            if not rule.matches(packet):
                continue
            if rule.action is Verdict.DROP:
                self.stats["drops"] += 1
                return Verdict.DROP, None
            if rule.is_redirect:
                sock = self.map.lookup(rule.map_key)  # type: ignore[arg-type]
                if sock is None:
                    self.stats["fallthroughs"] += 1
                    continue
                self.stats["redirects"] += 1
                return Verdict.PASS, sock
            return Verdict.PASS, None  # explicit pass-through rule
        return Verdict.PASS, None


def _verify_rule(rule: MatchRule, sock_map: SockArray) -> None:
    if not 1 <= rule.port_lo <= rule.port_hi <= 0xFFFF:
        raise VerifierError(f"bad port range {rule.port_lo}..{rule.port_hi}")
    families = {p.family for p in rule.prefixes}
    if len(families) > 1:
        raise VerifierError("rule mixes IPv4 and IPv6 prefixes")
    if rule.action is Verdict.PASS and rule.map_key is not None:
        if not 0 <= rule.map_key < sock_map.size:
            raise VerifierError(
                f"map key {rule.map_key} outside map size {sock_map.size}"
            )
    if rule.action is Verdict.DROP and rule.map_key is not None:
        raise VerifierError("DROP rules cannot carry a map key")


def verify_program(program: SkLookupProgram) -> None:
    """Re-check a whole program (attach-time verification entry point)."""
    if len(program.rules()) > MAX_RULES_PER_PROGRAM:
        raise VerifierError(f"program {program.name} exceeds {MAX_RULES_PER_PROGRAM} rules")
    for rule in program.rules():
        _verify_rule(rule, program.map)
