"""Socket substrate: BSD socket table, kernel lookup path, and sk_lookup."""

from .compiled import CompiledProgram
from .errors import (
    AddressInUseError,
    InvalidSocketStateError,
    ProgramError,
    ProgramNotAttachedError,
    SocketError,
    VerifierError,
)
from .lookup import DispatchResult, Engine, LookupPath, LookupStage, flow_hash
from .nat import CarrierGradeNAT, NatBinding, NatExhaustedError
from .sklookup import (
    MAX_RULES_PER_PROGRAM,
    MatchRule,
    SkLookupProgram,
    SockArray,
    Verdict,
    verify_program,
)
from .socktable import (
    RECEIVE_QUEUE_DEPTH,
    SOCKET_MEM_BYTES,
    Socket,
    SocketState,
    SocketTable,
)

__all__ = [
    "AddressInUseError",
    "CompiledProgram",
    "InvalidSocketStateError",
    "ProgramError",
    "ProgramNotAttachedError",
    "SocketError",
    "VerifierError",
    "DispatchResult",
    "Engine",
    "LookupPath",
    "LookupStage",
    "flow_hash",
    "CarrierGradeNAT",
    "NatBinding",
    "NatExhaustedError",
    "MAX_RULES_PER_PROGRAM",
    "MatchRule",
    "SkLookupProgram",
    "SockArray",
    "Verdict",
    "verify_program",
    "RECEIVE_QUEUE_DEPTH",
    "SOCKET_MEM_BYTES",
    "Socket",
    "SocketState",
    "SocketTable",
]
