"""A simulated kernel socket table with BSD bind/listen semantics.

This is the "before" picture of §3.3, implemented faithfully enough that
its three limitations are observable in experiments:

(i)   each socket costs memory and lengthens lookup,
(ii)  any IP+port selection restricts other selections (EADDRINUSE rules,
      wildcard port claiming),
(iii) once bound, a socket's IP+port cannot change.

The "after" picture — :mod:`repro.sockets.sklookup` — attaches to the
lookup path defined in :mod:`repro.sockets.lookup` without touching
anything here, mirroring how the real sk_lookup leaves socket code alone.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field

from ..netsim.addr import IPAddress
from ..netsim.packet import FiveTuple, Packet, Protocol
from .errors import AddressInUseError, InvalidSocketStateError

__all__ = ["SocketState", "Socket", "SocketTable", "SOCKET_MEM_BYTES", "RECEIVE_QUEUE_DEPTH"]

#: Kernel memory charged per socket.  The real number varies by kernel and
#: options (roughly 1–4 KiB for a TCP listener plus queues); the constant
#: only needs to make "4096 listeners per /20, doubled for TCP+UDP" (§3.3)
#: visibly expensive relative to one sk_lookup rule.
SOCKET_MEM_BYTES = 2048

#: Packets a socket's receive queue holds before dropping.  One queue per
#: socket is why INADDR_ANY turns a flood on one address into losses for
#: all addresses (§3.3), and why one-socket-per-IP isolates floods
#: (footnote 2).
RECEIVE_QUEUE_DEPTH = 1024


class SocketState(enum.Enum):
    NEW = "new"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"
    CLOSED = "closed"


@dataclass(slots=True, eq=False)
class Socket:
    """One socket: identity, binding, state, and a receive queue."""

    fd: int
    protocol: Protocol
    owner: str = ""
    state: SocketState = SocketState.NEW
    local_addr: IPAddress | None = None  # None = INADDR_ANY wildcard
    local_port: int | None = None
    remote: tuple[IPAddress, int] | None = None
    reuseport: bool = False
    queue: deque = field(default_factory=lambda: deque(maxlen=RECEIVE_QUEUE_DEPTH))
    enqueued: int = 0
    dropped: int = 0

    @property
    def is_wildcard(self) -> bool:
        return self.state in (SocketState.BOUND, SocketState.LISTENING) and self.local_addr is None

    def deliver(self, packet: Packet) -> bool:
        """Enqueue a packet; returns False (and counts a drop) when full."""
        if len(self.queue) >= RECEIVE_QUEUE_DEPTH:
            self.dropped += 1
            return False
        self.queue.append(packet)
        self.enqueued += 1
        return True

    def drain(self, n: int | None = None) -> list[Packet]:
        """Consume up to ``n`` queued packets (all, when ``n`` is None)."""
        out: list[Packet] = []
        while self.queue and (n is None or len(out) < n):
            out.append(self.queue.popleft())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = f"{self.local_addr or '*'}:{self.local_port}"
        return f"<sk:{self.fd} {self.protocol.name.lower()} {where} {self.state.value}>"


class SocketTable:
    """All sockets of one (simulated) host kernel.

    Lookup-relevant indexes: ``_listeners`` keyed by (proto, addr-int,
    port) with ``None`` addr for wildcards, and ``_connected`` keyed by the
    full 4-tuple.  SO_REUSEPORT groups share one key and hold a list.
    """

    def __init__(self) -> None:
        self._fd_counter = itertools.count(3)  # 0..2 taken, as tradition demands
        self._sockets: dict[int, Socket] = {}
        self._listeners: dict[tuple[Protocol, int | None, int], list[Socket]] = {}
        self._connected: dict[tuple[Protocol, int, int, int, int], Socket] = {}

    # -- creation / teardown ------------------------------------------------

    def socket(self, protocol: Protocol, owner: str = "", reuseport: bool = False) -> Socket:
        if protocol is Protocol.QUIC:
            protocol = Protocol.UDP  # QUIC sockets are UDP sockets
        sock = Socket(fd=next(self._fd_counter), protocol=protocol, owner=owner, reuseport=reuseport)
        self._sockets[sock.fd] = sock
        return sock

    def close(self, sock: Socket) -> None:
        if sock.state is SocketState.CLOSED:
            return
        if sock.local_port is not None and sock.state in (SocketState.BOUND, SocketState.LISTENING):
            key = (
                sock.protocol,
                None if sock.local_addr is None else sock.local_addr.value,
                sock.local_port,
            )
            group = self._listeners.get(key)
            if group and sock in group:
                group.remove(sock)
                if not group:
                    del self._listeners[key]
        if sock.state is SocketState.CONNECTED and sock.remote is not None:
            ckey = self._connected_key(sock)
            self._connected.pop(ckey, None)
        sock.state = SocketState.CLOSED
        self._sockets.pop(sock.fd, None)

    # -- bind / listen -------------------------------------------------------

    def bind(self, sock: Socket, addr: IPAddress | None, port: int) -> None:
        """Bind to (addr, port); ``addr=None`` is INADDR_ANY.

        Conflict rules (the subset of Linux behaviour the paper leans on):

        * same (addr, port, proto) already bound → EADDRINUSE, unless every
          holder and the newcomer set SO_REUSEPORT;
        * binding a specific addr when a wildcard holds the port (or vice
          versa) → EADDRINUSE, again unless all involved use SO_REUSEPORT.
        """
        if sock.state is not SocketState.NEW:
            raise InvalidSocketStateError(f"socket fd={sock.fd} already bound")
        if not 1 <= port <= 0xFFFF:
            raise ValueError(f"port {port} outside 1..65535")

        conflicts = self._binding_conflicts(sock.protocol, addr, port)
        for other in conflicts:
            if not (sock.reuseport and other.reuseport):
                where = f"{addr or '*'}:{port}"
                raise AddressInUseError(
                    f"{where}/{sock.protocol.name.lower()} conflicts with fd={other.fd} "
                    f"({other.local_addr or '*'}:{other.local_port})"
                )
        sock.local_addr = addr
        sock.local_port = port
        sock.state = SocketState.BOUND
        key = (sock.protocol, None if addr is None else addr.value, port)
        self._listeners.setdefault(key, []).append(sock)

    def _binding_conflicts(self, protocol: Protocol, addr: IPAddress | None, port: int) -> list[Socket]:
        found: list[Socket] = []
        exact = self._listeners.get((protocol, None if addr is None else addr.value, port))
        if exact:
            found.extend(exact)
        if addr is not None:
            wild = self._listeners.get((protocol, None, port))
            if wild:
                found.extend(wild)
        else:
            # Wildcard bind conflicts with every specific binding on the port.
            for (proto, a, p), group in self._listeners.items():
                if proto is protocol and p == port and a is not None:
                    found.extend(group)
        return found

    def listen(self, sock: Socket) -> None:
        if sock.state is not SocketState.BOUND:
            raise InvalidSocketStateError(f"socket fd={sock.fd} not bound")
        sock.state = SocketState.LISTENING

    def bind_listen(self, protocol: Protocol, addr: IPAddress | None, port: int,
                    owner: str = "", reuseport: bool = False) -> Socket:
        """Convenience: socket() + bind() + listen()."""
        sock = self.socket(protocol, owner=owner, reuseport=reuseport)
        try:
            self.bind(sock, addr, port)
        except Exception:
            self.close(sock)
            raise
        self.listen(sock)
        return sock

    # -- connected sockets -----------------------------------------------------

    @staticmethod
    def _connected_key(sock: Socket) -> tuple[Protocol, int, int, int, int]:
        assert sock.remote is not None and sock.local_addr is not None and sock.local_port is not None
        raddr, rport = sock.remote
        return (sock.protocol, sock.local_addr.value, sock.local_port, raddr.value, rport)

    def establish(self, listener: Socket, tuple5: FiveTuple) -> Socket:
        """Accept a connection on ``listener``: create the connected child.

        The child's local address is the packet's destination — which under
        sk_lookup may be an address the listener was never bound to.  That
        this works is precisely the decoupling of §3.3.
        """
        if listener.state is not SocketState.LISTENING:
            raise InvalidSocketStateError("cannot accept on a non-listening socket")
        proto = tuple5.protocol.wire_protocol
        child = self.socket(proto, owner=listener.owner)
        child.local_addr = tuple5.dst
        child.local_port = tuple5.dst_port
        child.remote = (tuple5.src, tuple5.src_port)
        child.state = SocketState.CONNECTED
        key = self._connected_key(child)
        if key in self._connected:
            raise AddressInUseError(f"connection {tuple5} already established")
        self._connected[key] = child
        return child

    def find_connected(self, packet: Packet) -> Socket | None:
        t = packet.tuple5
        key = (t.protocol.wire_protocol, t.dst.value, t.dst_port, t.src.value, t.src_port)
        return self._connected.get(key)

    def find_listener(self, protocol: Protocol, addr: IPAddress, port: int,
                      flow_hash: int = 0) -> Socket | None:
        """The classic two-step listener lookup: exact address, then wildcard.

        SO_REUSEPORT groups select a member by flow hash, the kernel's
        steering behaviour.
        """
        proto = protocol.wire_protocol
        for key in ((proto, addr.value, port), (proto, None, port)):
            group = [s for s in self._listeners.get(key, ()) if s.state is SocketState.LISTENING]
            if group:
                return group[flow_hash % len(group)]
        return None

    # -- accounting ------------------------------------------------------------

    def sockets(self) -> list[Socket]:
        return list(self._sockets.values())

    def listener_count(self) -> int:
        return sum(
            1 for group in self._listeners.values()
            for s in group if s.state is SocketState.LISTENING
        )

    def connected_count(self) -> int:
        return len(self._connected)

    def memory_bytes(self) -> int:
        """Kernel memory attributable to sockets (the §3.3 cost (i))."""
        return len(self._sockets) * SOCKET_MEM_BYTES
