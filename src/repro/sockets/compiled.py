"""Compiled sk_lookup dispatch: the rule list lowered to an indexed matcher.

The interpreter (:meth:`~repro.sockets.sklookup.SkLookupProgram.run`)
evaluates an ordered rule list, rule by rule, prefix by prefix — O(rules)
work on every packet.  That is faithful to Figure 5b but hostile to the
ROADMAP's "as fast as the hardware allows" mandate: the kernel's program
runs on *every* packet at CDN scale, so the reproduction's evaluation of
it must not be the bottleneck of every experiment above it.

:class:`CompiledProgram` lowers the same rule list into three nested
indexes, chosen so each packet pays a constant number of dict/bisect
probes instead of a linear scan:

1. **protocol buckets** — rules are partitioned by wire protocol (TCP,
   UDP); protocol-agnostic rules appear in both buckets.  One dict probe
   selects the bucket.
2. **port interval breakpoints** — within a bucket, every ``port_lo`` /
   ``port_hi + 1`` becomes a breakpoint; the segments between consecutive
   breakpoints each carry the exact ordered subset of rules whose port
   range covers them.  One ``bisect`` finds the packet's segment.
3. **mask-grouped LPM buckets** — within a segment, rule prefixes are
   grouped by (family, mask length) into plain dicts keyed by the masked
   network integer.  Matching a packet is one ``(dst & mask) in dict``
   probe per distinct mask length — typically one or two — rather than a
   scan over every rule's prefix list.

First-match semantics survive compilation because every index stores the
*original rule position*: probes yield candidate rule indices, the
candidates are merged in ascending order, and actions run in that order —
including the kernel contract that a redirect through an empty or stale
map slot falls through to the next matching rule.

A compiled program shares the source program's ``stats`` dict and sock
array, so counters stay coherent whichever engine ran, and map updates
(``SockArray.update``/``delete``) take effect on the next packet with no
recompilation — only *rule* changes invalidate, which
:meth:`SkLookupProgram.compiled` tracks via the program's rule version.

Compilation is O(segments × rules-per-segment); with the verifier's
4096-rule bound and realistic port sets it is microseconds, and the
differential property suite (``tests/test_compiled.py``) holds the two
engines verdict-for-verdict equal over seeded random rule/packet fuzz.
"""

from __future__ import annotations

from bisect import bisect_right

from ..netsim.packet import Packet, Protocol
from .socktable import Socket
from .sklookup import MatchRule, SkLookupProgram, Verdict

__all__ = ["CompiledProgram"]

# Action opcodes, precomputed per rule so the dispatch loop never touches
# MatchRule objects or enum identity checks beyond the final verdict.
_OP_DROP = 0
_OP_REDIRECT = 1
_OP_PASSTHROUGH = 2

_EMPTY: tuple[int, ...] = ()


class _Segment:
    """The rules covering one (protocol, port-interval) slice.

    ``always`` holds indices of rules with no prefix constraint; ``lpm``
    maps family → tuple of (mask, {network: (rule indices…)}) groups.
    All index tuples are ascending, preserving first-match order.
    """

    __slots__ = ("always", "lpm")

    def __init__(self, rules: list[tuple[int, MatchRule]]) -> None:
        always: list[int] = []
        # family -> mask -> network -> [rule indices]
        grouped: dict[int, dict[int, dict[int, list[int]]]] = {}
        for index, rule in rules:
            if not rule.prefixes:
                always.append(index)
                continue
            for family, network, mask in rule._compiled:
                nets = grouped.setdefault(family, {}).setdefault(mask, {})
                hits = nets.setdefault(network, [])
                if not hits or hits[-1] != index:  # same rule, same prefix twice
                    hits.append(index)
        self.always: tuple[int, ...] = tuple(always)
        self.lpm: dict[int, tuple[tuple[int, dict[int, tuple[int, ...]]], ...]] = {
            family: tuple(
                (mask, {net: tuple(hits) for net, hits in sorted(nets.items())})
                for mask, nets in sorted(masks.items(), reverse=True)
            )
            for family, masks in grouped.items()
        }

    def candidates(self, family: int, value: int) -> tuple[int, ...]:
        """Ascending indices of rules whose prefixes cover ``value``."""
        matched: tuple[int, ...] | None = None
        lists: list[tuple[int, ...]] | None = None
        groups = self.lpm.get(family)
        if groups is not None:
            for mask, nets in groups:
                hit = nets.get(value & mask)
                if hit is None:
                    continue
                if matched is None:
                    matched = hit
                else:
                    if lists is None:
                        lists = [matched]
                    lists.append(hit)
        if self.always:
            if matched is None:
                return self.always
            if lists is None:
                lists = [matched]
            lists.append(self.always)
        if lists is None:
            return matched if matched is not None else _EMPTY
        # Rare slow path: a packet matched through several mask groups
        # (and/or unconstrained rules).  Merge ascending, dropping the
        # duplicates a rule with prefixes at two mask lengths produces.
        merged = sorted({i for hits in lists for i in hits})
        return tuple(merged)


class _ProtoIndex:
    """Port-interval index for one wire protocol's rules."""

    __slots__ = ("breaks", "segments")

    def __init__(self, rules: list[tuple[int, MatchRule]]) -> None:
        points = {1}
        for _, rule in rules:
            points.add(rule.port_lo)
            if rule.port_hi < 0xFFFF:
                points.add(rule.port_hi + 1)
        self.breaks: list[int] = sorted(points)
        self.segments: list[_Segment] = [
            _Segment([(i, r) for i, r in rules if r.port_lo <= start <= r.port_hi])
            for start in self.breaks
        ]

    def segment_for(self, port: int) -> _Segment:
        return self.segments[bisect_right(self.breaks, port) - 1]


class CompiledProgram:
    """An :class:`SkLookupProgram` lowered to indexed first-match dispatch.

    Built by :meth:`SkLookupProgram.compiled`; ``version`` tags the rule
    list this was compiled from so stale caches are detected.  Shares the
    source program's sock array (live map updates need no recompile) and
    ``stats`` dict (runs/redirects/drops/fallthroughs stay coherent across
    engines).
    """

    __slots__ = ("name", "map", "stats", "version", "_actions", "_by_proto")

    def __init__(self, program: SkLookupProgram) -> None:
        rules = program.rules()
        self.name = program.name
        self.map = program.map
        self.stats = program.stats
        self.version = program.rule_version
        actions: list[tuple[int, int | None]] = []
        for rule in rules:
            if rule.action is Verdict.DROP:
                actions.append((_OP_DROP, None))
            elif rule.map_key is not None:
                actions.append((_OP_REDIRECT, rule.map_key))
            else:
                actions.append((_OP_PASSTHROUGH, None))
        self._actions: tuple[tuple[int, int | None], ...] = tuple(actions)
        indexed = list(enumerate(rules))
        self._by_proto: dict[Protocol, _ProtoIndex] = {
            proto: _ProtoIndex(
                [(i, r) for i, r in indexed if r._wire_protocol in (None, proto)]
            )
            for proto in (Protocol.TCP, Protocol.UDP)
        }

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict:
        """The compiled index, as data: what the dispatcher *actually*
        consults, independent of the rule list it was built from.

        The symbolic verifier (:mod:`repro.check.symbolic`) evaluates this
        description against the interpreter's rule list to prove the two
        engines equivalent — reading the real ``breaks``/``lpm``/``actions``
        structures means a corrupted or stale index produces a divergence
        counterexample rather than a vacuous pass.  Masks are reported as
        prefix lengths; segments as inclusive port spans.
        """
        actions = tuple(
            ("drop" if op == _OP_DROP else "redirect" if op == _OP_REDIRECT else "pass",
             key)
            for op, key in self._actions
        )
        protocols: dict[int, tuple] = {}
        for proto, index in self._by_proto.items():
            segments = []
            for i, start in enumerate(index.breaks):
                end = index.breaks[i + 1] - 1 if i + 1 < len(index.breaks) else 0xFFFF
                segment = index.segments[i]
                lpm = {
                    family: tuple(
                        (mask.bit_count(), dict(nets)) for mask, nets in groups
                    )
                    for family, groups in segment.lpm.items()
                }
                segments.append((start, end, segment.always, lpm))
            protocols[int(proto.value)] = tuple(segments)
        return {
            "name": self.name,
            "version": self.version,
            "actions": actions,
            "protocols": protocols,
        }

    # -- dispatch ----------------------------------------------------------

    def run(self, packet: Packet) -> tuple[Verdict, Socket | None]:
        """Indexed dispatch; contract identical to the interpreter's
        :meth:`SkLookupProgram.run` (first match wins, empty/stale redirect
        slots fall through, no match ⇒ SK_PASS with no socket)."""
        stats = self.stats
        stats["runs"] += 1
        t = packet.tuple5
        segment = self._by_proto[t.protocol.wire_protocol].segment_for(t.dst_port)
        dst = t.dst
        actions = self._actions
        map_lookup = self.map.lookup
        for index in segment.candidates(dst.family, dst.value):
            op, key = actions[index]
            if op == _OP_REDIRECT:
                sock = map_lookup(key)
                if sock is None:
                    stats["fallthroughs"] += 1
                    continue
                stats["redirects"] += 1
                return Verdict.PASS, sock
            if op == _OP_DROP:
                stats["drops"] += 1
                return Verdict.DROP, None
            return Verdict.PASS, None  # explicit pass-through rule
        return Verdict.PASS, None
