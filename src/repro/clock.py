"""Simulated time.

Everything TTL-shaped in the reproduction — DNS caches, connection
lifetimes, the DoS k-ary search's "TTL + t·log_k(n)" bound — is driven by
one explicit clock instead of the wall clock, so experiments are
deterministic and can cover simulated days in milliseconds of real time.
"""

from __future__ import annotations

__all__ = ["Clock"]


class Clock:
    """A monotonically advancing simulated clock (seconds as float)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump to an absolute time, which must not be in the past."""
        if when < self._now:
            raise ValueError(f"cannot move clock backwards ({when} < {self._now})")
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(t={self._now:.3f})"
